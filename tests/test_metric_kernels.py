"""Differential harness: array-native metric kernels ≡ dict references.

The kernels in ``repro.bgpsim.metrics_kernel`` compute path counts,
reliance (§7), hegemony cross-fractions (§10), and Fig. 13 path-length
histograms directly on a compiled state's flat arrays, never touching
``state.routes``.  They are only safe to dispatch to if they reproduce
the dict reference implementations exactly.  This module proves it:

* **exact level** — kernel output equals the dict reference in
  ``Fraction`` mode on seeded synthetic-Internet scenarios (≥3 seeds ×
  2 sizes), for compiled states and for a ``DeltaRoutingState`` built
  from a route leak;
* **float level** — the float paths are *bit-identical*: both sides
  accumulate in the same canonical order (nodes by (length, ASN),
  parents ascending), which also pins results across set/dict insertion
  orders (the shuffled-insertion regression below);
* **plumbing level** — the DAG and counts are cached per state and
  dropped on pickling, ``routes`` is never materialized by a kernel
  pass, and the engine/worker knobs threaded through the pathlen and
  hegemony sweeps change nothing but wall-clock.
"""

from __future__ import annotations

import os
import pickle
import random

import pytest

from .conftest import netgen_graph, sample_origins
from repro.bgpsim import (
    CompiledRoutingState,
    DeltaRoutingState,
    Seed,
    cross_fractions_kernel,
    dag_of,
    is_array_state,
    length_histogram_kernel,
    path_counts_kernel,
    propagate,
    propagate_compiled,
    propagate_delta,
    reliance_kernel,
    routed_count_kernel,
)
from repro.bgpsim.metrics_kernel import path_counts_indexed
from repro.bgpsim.routes import NodeRoute, RoutingState
from repro.core.hegemony import global_hegemony, path_cross_fractions
from repro.core.metrics import reachability_from_state
from repro.core.pathlen import (
    path_length_distribution,
    path_length_histogram,
)
from repro.core.reliance import (
    _path_counts_routes,
    _reliance_from_routes,
    path_counts,
    reliance_from_state,
    summarize_reliance,
    summarize_reliance_from_state,
)

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))

#: (profile, scenario seed) — ≥3 seeds × 2 sizes, per the acceptance bar.
SCENARIOS = [
    ("tiny", 20200901),
    ("tiny", 7),
    ("tiny", 8),
    ("small", 20200901),
    ("small", 7),
    ("small", 8),
]


def _states(graph, origin, excluded=frozenset()):
    """(reference dict state, compiled array state) for one origin."""
    seed = Seed(asn=origin, key="origin")
    ref = propagate(graph, seed, excluded=excluded, engine="reference")
    compiled = propagate(graph, seed, excluded=excluded, engine="compiled")
    return ref, compiled


def _leak_states(graph, origin, leaker):
    """(two-seed reference state, DeltaRoutingState) for one leak."""
    legit = Seed(asn=origin, key="origin")
    leak = Seed(asn=leaker, key="leak", initial_length=0)
    baseline = propagate_compiled(graph, (legit,), locked_origin=origin)
    delta = propagate_delta(graph, baseline, leak, locked_origin=origin)
    ref = propagate(graph, (legit, leak), engine="reference")
    return ref, delta


# ---------------------------------------------------------------------------
# differential: kernels ≡ dict reference
# ---------------------------------------------------------------------------

class TestDifferential:
    @pytest.mark.parametrize("profile,seed", SCENARIOS)
    def test_compiled_state_kernels_match_reference(self, profile, seed):
        graph = netgen_graph(profile, seed=seed)
        for origin in sample_origins(graph, 3, seed=seed):
            ref, compiled = _states(graph, origin)
            assert isinstance(compiled, CompiledRoutingState)

            # path counts: one forward pass ≡ the sorted-dict reference
            assert path_counts_kernel(compiled) == _path_counts_routes(ref)

            # reliance, exact Fraction mode (no float rounding to hide in)
            assert reliance_kernel(compiled, exact=True) == (
                _reliance_from_routes(ref, exact=True)
            )

            # reliance restricted to a receiver subset (plus strangers,
            # which both sides must ignore)
            receivers = sample_origins(graph, 5, seed=seed + 1) + [origin, -1]
            assert reliance_kernel(compiled, receivers=receivers, exact=True) == (
                _reliance_from_routes(ref, receivers=receivers, exact=True)
            )

            # hegemony cross-fractions for a handful of targets
            for target in sample_origins(graph, 4, seed=seed + 2) + [-1]:
                assert cross_fractions_kernel(compiled, target) == (
                    path_cross_fractions(ref, target)
                )

            # Fig. 13 path-length histogram, unweighted and weighted
            assert length_histogram_kernel(compiled) == (
                path_length_histogram(ref)
            )
            weights = {asn: (asn % 7) / 3 for asn in graph.nodes()}
            restrict = set(sample_origins(graph, 20, seed=seed + 3))
            assert length_histogram_kernel(
                compiled, weights=weights, restrict_to=restrict
            ) == path_length_histogram(
                ref, weights=weights, restrict_to=restrict
            )

            # the kernels never materialized the routes dict
            assert compiled._materialized is None

    @pytest.mark.parametrize("profile,seed", SCENARIOS)
    def test_float_paths_are_bit_identical(self, profile, seed):
        graph = netgen_graph(profile, seed=seed)
        for origin in sample_origins(graph, 3, seed=seed + 4):
            ref, compiled = _states(graph, origin)
            kernel = reliance_kernel(compiled)
            reference = _reliance_from_routes(ref)
            assert kernel == reference
            # == on floats is exact: every value is bit-for-bit the same
            assert all(kernel[a] == reference[a] for a in reference)
            for target in sample_origins(graph, 3, seed=seed + 5):
                assert cross_fractions_kernel(compiled, target) == (
                    path_cross_fractions(ref, target)
                )
            assert compiled._materialized is None

    @pytest.mark.parametrize("profile,seed", SCENARIOS)
    def test_delta_state_kernels_match_reference(self, profile, seed):
        graph = netgen_graph(profile, seed=seed)
        rng = random.Random(seed * 31 + 1)
        nodes = sorted(graph.nodes())
        origin, leaker = rng.sample(nodes, 2)
        ref, delta = _leak_states(graph, origin, leaker)
        assert isinstance(delta, DeltaRoutingState)
        assert is_array_state(delta)

        assert path_counts_kernel(delta) == _path_counts_routes(ref)
        assert reliance_kernel(delta, exact=True) == (
            _reliance_from_routes(ref, exact=True)
        )
        assert reliance_kernel(delta) == _reliance_from_routes(ref)
        for target in (origin, leaker, *sample_origins(graph, 3, seed=seed)):
            assert cross_fractions_kernel(delta, target) == (
                path_cross_fractions(ref, target)
            )
        assert length_histogram_kernel(delta) == path_length_histogram(ref)
        assert routed_count_kernel(delta) == len(ref.reachable_ases())

    @pytest.mark.parametrize("profile,seed", [("tiny", 20200901), ("small", 7)])
    def test_public_metrics_dispatch_to_kernels(self, profile, seed):
        """The `core` entry points route array states through the kernels
        (routes stays unmaterialized) and plain states through the dicts."""
        graph = netgen_graph(profile, seed=seed)
        origin = sample_origins(graph, 1, seed=seed)[0]
        ref, compiled = _states(graph, origin)

        assert path_counts(compiled) == path_counts(ref)
        assert reliance_from_state(compiled) == reliance_from_state(ref)
        assert path_length_histogram(compiled) == path_length_histogram(ref)
        assert reachability_from_state(compiled) == (
            reachability_from_state(ref)
        )
        assert reachability_from_state(ref) == len(ref.reachable_ases())
        assert summarize_reliance_from_state(compiled) == (
            summarize_reliance(reliance_from_state(ref))
        )
        assert compiled._materialized is None


# ---------------------------------------------------------------------------
# determinism: float results don't depend on insertion order
# ---------------------------------------------------------------------------

def _shuffled_clone(state: RoutingState, rng: random.Random) -> RoutingState:
    """A plain-state clone with routes and parent sets rebuilt in a
    different (shuffled) insertion order."""
    clone = RoutingState(state.seeds)
    items = list(state.routes.items())
    rng.shuffle(items)
    for asn, node in items:
        parents = list(node.parents)
        rng.shuffle(parents)
        rebuilt: set[int] = set()
        for parent in parents:
            rebuilt.add(parent)
        clone.routes[asn] = NodeRoute(
            route_class=node.route_class,
            length=node.length,
            parents=rebuilt,
            origins=set(node.origins),
        )
    return clone


class TestDeterministicAccumulation:
    @pytest.mark.parametrize("profile,seed", [("tiny", 7), ("small", 8)])
    def test_shuffled_insertion_order_same_floats(self, profile, seed):
        graph = netgen_graph(profile, seed=seed)
        origin = sample_origins(graph, 1, seed=seed)[0]
        state = propagate(
            graph, Seed(asn=origin, key="origin"), engine="reference"
        )
        for trial in range(3):
            clone = _shuffled_clone(state, random.Random(seed + trial))
            assert _reliance_from_routes(clone) == (
                _reliance_from_routes(state)
            )
            for target in sample_origins(graph, 3, seed=seed + trial):
                assert path_cross_fractions(clone, target) == (
                    path_cross_fractions(state, target)
                )


# ---------------------------------------------------------------------------
# caching and serialization plumbing
# ---------------------------------------------------------------------------

class TestDagCaching:
    def test_dag_and_counts_cached_on_state(self):
        graph = netgen_graph("tiny", seed=7)
        origin = sample_origins(graph, 1, seed=7)[0]
        state = propagate(
            graph, Seed(asn=origin, key="origin"), engine="compiled"
        )
        dag = dag_of(state)
        assert dag_of(state) is dag
        counts = path_counts_indexed(state)
        assert path_counts_indexed(state) is counts
        # every kernel reuses the same cached DAG
        reliance_kernel(state)
        cross_fractions_kernel(state, origin)
        assert state._metric_dag is dag

    def test_pickling_drops_kernel_caches(self):
        graph = netgen_graph("tiny", seed=7)
        origin = sample_origins(graph, 1, seed=7)[0]
        state = propagate(
            graph, Seed(asn=origin, key="origin"), engine="compiled"
        )
        before = reliance_kernel(state)
        clone = pickle.loads(pickle.dumps(state))
        assert clone._metric_dag is None
        assert clone._metric_counts is None
        assert clone._materialized is None
        assert reliance_kernel(clone) == before

    def test_dag_of_rejects_plain_states(self):
        graph = netgen_graph("tiny", seed=7)
        origin = sample_origins(graph, 1, seed=7)[0]
        state = propagate(
            graph, Seed(asn=origin, key="origin"), engine="reference"
        )
        with pytest.raises(TypeError):
            dag_of(state)
        with pytest.raises(TypeError):
            routed_count_kernel(state)


# ---------------------------------------------------------------------------
# engine / worker knobs on the sweeps (satellite: pathlen + hegemony)
# ---------------------------------------------------------------------------

class TestSweepKnobs:
    def test_pathlen_distribution_engine_invariant(self):
        graph = netgen_graph("tiny", seed=20200901)
        origins = sample_origins(graph, 4, seed=1)
        ref = path_length_distribution(graph, origins, engine="reference")
        compiled = path_length_distribution(
            graph, origins, engine="compiled"
        )
        assert ref == compiled

    def test_pathlen_distribution_worker_invariant(self):
        graph = netgen_graph("tiny", seed=20200901)
        origins = sample_origins(graph, 4, seed=2)
        serial = path_length_distribution(graph, origins)
        parallel = path_length_distribution(
            graph, origins, workers=WORKERS
        )
        assert serial == parallel

    def test_global_hegemony_engine_and_worker_invariant(self):
        graph = netgen_graph("tiny", seed=7)
        targets = sample_origins(graph, 5, seed=3)
        kwargs = dict(sample=6, rng=random.Random(5))
        base = global_hegemony(graph, targets, engine="compiled", **kwargs)
        kwargs = dict(sample=6, rng=random.Random(5))
        ref = global_hegemony(graph, targets, engine="reference", **kwargs)
        kwargs = dict(sample=6, rng=random.Random(5))
        parallel = global_hegemony(
            graph, targets, workers=WORKERS, **kwargs
        )
        assert base == ref == parallel

    def test_cross_fractions_counts_reuse_is_identical(self):
        """Passing precomputed counts down the dict path (the quadratic →
        linear hegemony satellite) changes nothing about the result."""
        graph = netgen_graph("tiny", seed=8)
        origin, target, other = sample_origins(graph, 3, seed=4)
        state = propagate(
            graph, Seed(asn=origin, key="origin"), engine="reference"
        )
        counts = path_counts(state)
        for tgt in (target, other):
            assert path_cross_fractions(state, tgt, counts=counts) == (
                path_cross_fractions(state, tgt)
            )
