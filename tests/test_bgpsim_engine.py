"""Unit tests for the Gao-Rexford propagation engine (hand-computed routes)."""

import pytest

from repro.bgpsim import RouteClass, Seed, propagate

from .conftest import (
    CLOUD,
    CONTENT,
    E1,
    E2,
    E3,
    E4,
    T1A,
    T1B,
    T2A,
    T2B,
)


class TestSingleOrigin:
    def test_origin_route(self, mini_graph):
        state = propagate(mini_graph, Seed(asn=CLOUD))
        origin = state.route(CLOUD)
        assert origin.length == 0
        assert origin.origins == {"origin"}
        assert not origin.parents

    def test_provider_gets_customer_route(self, mini_graph):
        state = propagate(mini_graph, Seed(asn=CLOUD))
        route = state.route(T2A)
        assert route.route_class is RouteClass.CUSTOMER
        assert route.length == 1
        assert route.parents == {CLOUD}

    def test_peer_prefers_short_peer_route(self, mini_graph):
        # AS2 peers with the cloud directly and would also hear a longer
        # peer route from AS1; direct wins.
        state = propagate(mini_graph, Seed(asn=CLOUD))
        route = state.route(T1B)
        assert route.route_class is RouteClass.PEER
        assert route.length == 1
        assert route.parents == {CLOUD}

    def test_customer_class_preferred_at_tier1(self, mini_graph):
        # AS1 hears the cloud via customer AS11 (len 2); customer routes are
        # kept even though a shorter peer route exists via AS2? No — AS2's
        # route is peer-learned and is never exported to a peer, so AS1's
        # only route is via AS11.
        state = propagate(mini_graph, Seed(asn=CLOUD))
        route = state.route(T1A)
        assert route.route_class is RouteClass.CUSTOMER
        assert route.length == 2
        assert route.parents == {T2A}

    def test_provider_route_at_stub(self, mini_graph):
        state = propagate(mini_graph, Seed(asn=CLOUD))
        route = state.route(E3)
        assert route.route_class is RouteClass.PROVIDER
        assert route.length == 3
        assert route.parents == {T1A}

    def test_peer_beats_provider_class(self, mini_graph):
        # AS202 could use provider AS12 (len 2) but holds a direct peer
        # route from the cloud (len 1, PEER class).
        state = propagate(mini_graph, Seed(asn=CLOUD))
        route = state.route(E2)
        assert route.route_class is RouteClass.PEER
        assert route.length == 1
        assert route.parents == {CLOUD}

    def test_everyone_routed_under_full_graph(self, mini_graph):
        state = propagate(mini_graph, Seed(asn=CLOUD))
        assert state.reachable_ases() == frozenset(mini_graph.nodes()) - {CLOUD}

    def test_content_gets_provider_route(self, mini_graph):
        state = propagate(mini_graph, Seed(asn=CLOUD))
        route = state.route(CONTENT)
        assert route.route_class is RouteClass.PROVIDER
        assert route.parents == {T2B}
        assert route.length == 2

    def test_excluded_nodes_do_not_forward(self, mini_graph):
        state = propagate(mini_graph, Seed(asn=CLOUD), excluded={T2A, T2B, T1A, T1B})
        assert not state.has_route(T1A)
        assert not state.has_route(CONTENT)  # only reachable via AS12
        assert state.route(E4).length == 2  # via peer AS201

    def test_excluded_seed_rejected(self, mini_graph):
        with pytest.raises(ValueError):
            propagate(mini_graph, Seed(asn=CLOUD), excluded={CLOUD})

    def test_unknown_seed_rejected(self, mini_graph):
        with pytest.raises(KeyError):
            propagate(mini_graph, Seed(asn=31337))

    def test_export_restriction_limits_first_hop(self, mini_graph):
        seed = Seed(asn=CLOUD, export_to=frozenset({T2A}))
        state = propagate(mini_graph, seed)
        # Direct peers not in the export set hear the route only via the
        # hierarchy (AS2 via AS1) or not at all.
        assert state.route(E2).route_class is RouteClass.PROVIDER
        assert state.route(T1B).route_class is RouteClass.PEER
        assert state.route(T1B).parents == {T1A}


class TestTies:
    def test_tied_parents_are_merged(self):
        from repro.topology import ASGraph

        g = ASGraph()
        # diamond: origin 1 -> providers 2 and 3 -> shared provider 4
        g.add_p2c(2, 1)
        g.add_p2c(3, 1)
        g.add_p2c(4, 2)
        g.add_p2c(4, 3)
        state = propagate(g, Seed(asn=1))
        top = state.route(4)
        assert top.parents == {2, 3}
        assert state.count_best_paths(4) == 2
        paths = set(state.enumerate_best_paths(4))
        assert paths == {(4, 2, 1), (4, 3, 1)}

    def test_contains_path(self, mini_graph):
        state = propagate(mini_graph, Seed(asn=CLOUD))
        assert state.contains_path((E3, T1A, T2A, CLOUD))
        assert not state.contains_path((E3, T1A, CLOUD))
        assert not state.contains_path((E3, T1B, CLOUD))


class TestMultiSeed:
    def test_customer_class_leak_wins_over_peer(self, mini_graph):
        # AS301 leaks the cloud's prefix: AS12 and AS2 prefer the leaked
        # customer-learned route over legitimate peer routes.
        legit = Seed(asn=CLOUD, key="origin")
        leak = Seed(asn=CONTENT, key="leak", initial_length=2)
        state = propagate(mini_graph, (legit, leak))
        assert state.origins_at(T2B) == {"leak"}
        assert state.route(T2B).route_class is RouteClass.CUSTOMER
        assert state.origins_at(T1B) == {"leak"}
        # but peers with a direct route to the cloud stay clean
        assert state.origins_at(E2) == {"origin"}
        assert state.origins_at(T2A) == {"origin"}
        assert state.origins_at(E4) == {"origin"}

    def test_peer_locked_neighbor_drops_leak(self, mini_graph):
        legit = Seed(asn=CLOUD, key="origin")
        leak = Seed(asn=CONTENT, key="leak", initial_length=2)
        state = propagate(
            mini_graph,
            (legit, leak),
            peer_locked={T2B, T1B, T2A},
            locked_origin=CLOUD,
        )
        assert state.origins_at(T2B) == {"origin"}
        assert state.origins_at(T1B) == {"origin"}

    def test_duplicate_seed_asn_rejected(self, mini_graph):
        with pytest.raises(ValueError):
            propagate(
                mini_graph,
                (Seed(asn=CLOUD, key="a"), Seed(asn=CLOUD, key="b")),
            )

    def test_origin_sets_merge_on_exact_tie(self):
        from repro.topology import ASGraph

        g = ASGraph()
        # 10 provides for both origins 1 and 2 at equal distance
        g.add_p2c(10, 1)
        g.add_p2c(10, 2)
        state = propagate(
            g, (Seed(asn=1, key="origin"), Seed(asn=2, key="leak"))
        )
        assert state.origins_at(10) == {"origin", "leak"}
