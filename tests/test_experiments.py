"""Integration tests: every experiment runs on a tiny context and
produces results with the paper's structure."""

import pytest

from repro.experiments import (
    appendixA_paths,
    appendixB_tier1,
    build_context,
    fig2_reachability,
    fig3_cone_vs_hfr,
    fig4_unreachable,
    fig6_table2_reliance,
    fig7_10_leaks,
    fig11_map,
    fig12_coverage,
    fig13_pathlen,
    sec45_validation,
    table1_top20,
    table3_rdns,
)
from repro.experiments.runner import render_all, run_all


@pytest.fixture(scope="module")
def ctx():
    return build_context("tiny")


@pytest.fixture(scope="module")
def ctx2015():
    return build_context("tiny2015")


class TestContext:
    def test_augmented_graph_extends_public(self, ctx):
        for cloud in ctx.scenario.cloud_asns():
            assert ctx.graph.degree(cloud) >= ctx.scenario.public_graph.degree(
                cloud
            )

    def test_validation_reports_available(self, ctx):
        reports = ctx.validation_reports()
        assert set(reports) == set(ctx.scenario.cloud_asns())

    def test_unmeasured_context_uses_truth(self):
        truth_ctx = build_context("tiny", measure=False)
        assert (
            truth_ctx.graph.edge_count()
            == truth_ctx.scenario.graph.edge_count()
        )
        assert not truth_ctx.inferred

    def test_label(self, ctx):
        google = ctx.clouds["Google"]
        assert ctx.label(google) == "Google"


class TestIndividualExperiments:
    def test_fig2(self, ctx):
        result = fig2_reachability.run(ctx)
        assert len(result.rows) == 4 + len(ctx.tiers.tier1) + len(
            ctx.tiers.tier2
        )
        assert "Fig. 2" in result.render()

    def test_table1(self, ctx, ctx2015):
        result = table1_top20.run(ctx, ctx2015, top_n=10)
        assert len(result.entries_2020) == 10
        assert result.entries_2020[0].fraction > 0
        assert "Table 1" in result.render()

    def test_fig3(self, ctx):
        result = fig3_cone_vs_hfr.run(ctx)
        assert len(result.points) == len(ctx.graph)
        assert -1.0 <= result.rank_correlation() <= 1.0
        assert "Fig. 3" in result.render()

    def test_fig4(self, ctx):
        result = fig4_unreachable.run(ctx, top_transit=3)
        assert len(result.rows) == 7
        for row in result.rows:
            total = sum(row.fraction(t) for t in row.breakdown)
            assert total == pytest.approx(1.0) or row.unreachable_total == 0

    def test_fig6_table2(self, ctx):
        result = fig6_table2_reliance.run(ctx)
        assert {c.name for c in result.clouds} == set(ctx.clouds)
        assert "Table 2" in result.render()

    def test_fig7_8(self, ctx):
        result = fig7_10_leaks.run(
            ctx, leaks_per_config=10, baseline_origins=3, baseline_leakers=3
        )
        assert result.average_resilience
        names = {o.name for o in result.origins}
        assert "Facebook" in names
        for origin in result.origins:
            for curve in origin.curves.values():
                assert all(0 <= x <= 1 for x in curve)

    def test_fig9(self, ctx):
        result = fig7_10_leaks.run_fig9(ctx, leaks_per_config=8)
        assert set(result.users_curves) == set(result.curves)

    def test_fig10(self, ctx, ctx2015):
        result = fig7_10_leaks.run_fig10(ctx, ctx2015, leaks_per_config=8)
        assert result.curve_2015 and result.curve_2020

    def test_fig11(self, ctx):
        result = fig11_map.run(ctx)
        assert {"sha", "bjs"} <= result.cloud_only
        assert result.cloud_cities and result.transit_cities

    def test_fig12(self, ctx):
        result = fig12_coverage.run(ctx)
        clouds = result.cohort("clouds")
        assert clouds.percent(500) <= clouds.percent(1000)
        with pytest.raises(KeyError):
            result.cohort("nonexistent")

    def test_table3(self, ctx):
        result = table3_rdns.run(ctx, providers=["Google", "Amazon"])
        assert result.row("Amazon").hostnames == 0
        with pytest.raises(KeyError):
            result.row("Nonexistent")

    def test_appendixA(self, ctx):
        result = appendixA_paths.run(ctx, max_traces_per_cloud=150)
        assert {r.name for r in result.rows} == set(ctx.clouds)
        for row in result.rows:
            assert 0.0 <= row.match_rate <= 1.0
            assert row.total > 0

    def test_appendixB(self, ctx):
        result = appendixB_tier1.run(ctx, tier1_names=("Level 3",))
        case = result.case("Level 3")
        assert case.hierarchy_free <= case.tier1_free
        assert 0.0 <= case.drop_explained_by_top6 <= 1.0

    def test_fig13(self, ctx, ctx2015):
        result = fig13_pathlen.run(ctx, ctx2015)
        assert 2020 in result.bars and 2015 in result.bars
        assert "Microsoft" not in result.bars[2015]


class TestRunner:
    def test_run_all_and_render(self, ctx, ctx2015):
        results = run_all(ctx, ctx2015, leaks_per_config=6)
        assert len(results) == 17
        report = render_all(results)
        for marker in ("fig2", "table1", "fig13", "appendixB", "appendixD"):
            assert f"===== {marker} =====" in report
