"""Differential harness: vectorized numpy kernels ≡ pure-Python kernels.

The numpy kernels of :mod:`repro.bgpsim.vectorized` dispatch inside the
existing entry points (``propagate_compiled`` / ``propagate_batch`` /
``dag_of`` / the metric kernels), so the only acceptable behaviour is
bit-for-bit equivalence with the pure loops they replace.  This module
proves it on seeded synthetic-Internet scenarios (≥3 seeds × 2 sizes):

* full propagation states (including :class:`DeltaRoutingState` leak
  injections and :class:`BatchOriginView` per-origin views);
* every metric kernel output — counts and histograms by dict equality,
  reliance / crossing fractions / hegemony by **float byte equality**
  (the vectorized kernels replay the pure kernels' accumulation order);
* the ``REPRO_VECTOR`` knob: ``off`` forces pure loops, ``on`` without
  numpy raises, and ``auto`` without numpy silently falls back.

Skipped wholesale (except the knob tests) when numpy is missing — the
``[perf]`` extra is optional by design.
"""

from __future__ import annotations

import pytest

from .conftest import assert_states_equal, netgen_graph, sample_origins
from repro.bgpsim import (
    Seed,
    leak_seed,
    propagate_batch,
    propagate_compiled,
    propagate_delta,
    resolve_vector,
)
from repro.bgpsim import metrics_kernel as mk
from repro.bgpsim import vectorized as vec
from repro.core.hegemony import _hegemony_values

#: (profile, scenario seed) — ≥3 seeds × 2 sizes, per the acceptance bar.
SCENARIOS = [
    ("tiny", 20200901),
    ("tiny", 7),
    ("tiny", 8),
    ("small", 20200901),
    ("small", 7),
    ("small", 8),
]

needs_numpy = pytest.mark.skipif(
    not vec.numpy_available(), reason="numpy not installed ([perf] extra)"
)


@pytest.fixture
def vector_off(monkeypatch):
    monkeypatch.setenv("REPRO_VECTOR", "off")


@pytest.fixture
def vector_on(monkeypatch):
    if not vec.numpy_available():
        pytest.skip("numpy not installed ([perf] extra)")
    monkeypatch.setenv("REPRO_VECTOR", "on")


def _with_mode(monkeypatch, mode, func):
    with monkeypatch.context() as ctx:
        ctx.setenv("REPRO_VECTOR", mode)
        return func()


def _metric_outputs(state, origin, targets):
    """Every kernel output, floats as exact bytes."""
    reliance = mk.reliance_kernel(state)
    return {
        "counts": mk.path_counts_kernel(state),
        "reliance_keys": sorted(reliance),
        "reliance_bytes": [
            reliance[key].hex() for key in sorted(reliance)
        ],
        "hegemony_bytes": _hegemony_values(
            state, origin, targets
        ).tobytes(),
        "histogram": mk.length_histogram_kernel(state),
        "routed": mk.routed_count_kernel(state),
    }


@needs_numpy
class TestVectorizedDifferential:
    @pytest.mark.parametrize("profile_name,seed", SCENARIOS)
    def test_propagation_states_identical(
        self, monkeypatch, profile_name, seed
    ):
        graph = netgen_graph(profile_name, seed)
        cg = graph.compile()
        for origin in sample_origins(graph, 6, seed=seed):
            seeds = (Seed(asn=origin),)
            pure = _with_mode(
                monkeypatch, "off", lambda: propagate_compiled(cg, seeds)
            )
            fast = _with_mode(
                monkeypatch, "on", lambda: propagate_compiled(cg, seeds)
            )
            assert_states_equal(
                pure, fast, f"({profile_name}/{seed} origin {origin})"
            )

    @pytest.mark.parametrize("profile_name,seed", SCENARIOS)
    def test_metric_kernels_bit_identical(
        self, monkeypatch, profile_name, seed
    ):
        graph = netgen_graph(profile_name, seed)
        cg = graph.compile()
        origins = sample_origins(graph, 4, seed=seed)
        targets = tuple(sample_origins(graph, 8, seed=seed + 1))
        for origin in origins:
            seeds = (Seed(asn=origin),)

            def outputs():
                state = propagate_compiled(cg, seeds)
                return _metric_outputs(state, origin, targets)

            pure = _with_mode(monkeypatch, "off", outputs)
            fast = _with_mode(monkeypatch, "on", outputs)
            assert pure == fast, (
                f"metric outputs diverged ({profile_name}/{seed} "
                f"origin {origin})"
            )

    @pytest.mark.parametrize("profile_name,seed", SCENARIOS[3:])
    def test_delta_states_identical(self, monkeypatch, profile_name, seed):
        graph = netgen_graph(profile_name, seed)
        origins = sample_origins(graph, 4, seed=seed)
        leakers = sample_origins(graph, 4, seed=seed + 1)

        def delta_state():
            baseline = propagate_compiled(
                graph.compile(), (Seed(asn=origin),)
            )
            leak = leak_seed(graph, origin, leaker)
            return propagate_delta(graph, baseline, leak)

        for origin, leaker in zip(origins, leakers):
            if origin == leaker:
                continue
            try:
                pure = _with_mode(monkeypatch, "off", delta_state)
            except ValueError:
                continue  # config outside the delta contract: skip pair
            fast = _with_mode(monkeypatch, "on", delta_state)
            assert_states_equal(
                pure, fast,
                f"(delta {profile_name}/{seed} {origin}->{leaker})",
            )

    @pytest.mark.parametrize("profile_name,seed", SCENARIOS[3:])
    def test_batch_views_identical(self, monkeypatch, profile_name, seed):
        graph = netgen_graph(profile_name, seed)
        origins = sample_origins(graph, 8, seed=seed)
        targets = tuple(sample_origins(graph, 6, seed=seed + 1))

        def batch_outputs():
            batch = propagate_batch(graph, origins)
            return [
                _metric_outputs(state, origin, targets)
                for origin, state in batch.views()
            ]

        pure = _with_mode(monkeypatch, "off", batch_outputs)
        fast = _with_mode(monkeypatch, "on", batch_outputs)
        assert pure == fast


class TestVectorKnob:
    def test_off_forces_pure(self, vector_off):
        assert resolve_vector() is False
        assert vec.vector_enabled() is False

    def test_explicit_values_win_over_env(self, vector_off):
        if vec.numpy_available():
            assert resolve_vector("on") is True
        assert resolve_vector("off") is False

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            resolve_vector("sideways")

    def test_auto_without_numpy_falls_back_silently(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR", "auto")
        monkeypatch.setattr(vec, "_np", None)
        monkeypatch.setattr(vec, "_np_checked", True)
        assert resolve_vector() is False
        # dispatch sites keep working on the pure path
        graph = netgen_graph("tiny", 7)
        state = propagate_compiled(
            graph.compile(), (Seed(asn=sorted(graph.nodes())[0]),)
        )
        assert mk.routed_count_kernel(state) > 0

    def test_on_without_numpy_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_VECTOR", "on")
        monkeypatch.setattr(vec, "_np", None)
        monkeypatch.setattr(vec, "_np_checked", True)
        with pytest.raises(RuntimeError, match="numpy"):
            resolve_vector()

    @needs_numpy
    def test_vector_kernels_return_none_beyond_exact_floats(self):
        # counts beyond 2**53 cannot cast exactly; the builder hands back
        graph = netgen_graph("tiny", 7)
        state = propagate_compiled(
            graph.compile(), (Seed(asn=sorted(graph.nodes())[0]),)
        )
        dag = mk.dag_of(state)
        assert dag is not None
