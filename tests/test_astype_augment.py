"""Unit tests for AS-type classification and traceroute augmentation."""

import pytest

from repro.topology import (
    ASGraph,
    ASType,
    RawASType,
    Relationship,
    augment_with_neighbors,
    classify_graph,
    classify_structural,
    classify_with_users,
    refine_with_users,
    type_breakdown,
)

from .conftest import CLOUD, CONTENT, E3, T1A, T2A, T2B, build_mini


class TestClassification:
    def test_transit_provider(self, mini_graph):
        assert (
            classify_structural(mini_graph, T1A) is RawASType.TRANSIT_ACCESS
        )
        assert (
            classify_structural(mini_graph, T2A) is RawASType.TRANSIT_ACCESS
        )

    def test_stub_enterprise(self, mini_graph):
        assert classify_structural(mini_graph, E3) is RawASType.ENTERPRISE

    def test_peering_rich_stub_is_content(self, mini_graph):
        assert (
            classify_structural(mini_graph, CLOUD, peering_rich=4)
            is RawASType.CONTENT
        )

    def test_refinement_with_users(self, mini_graph):
        raw = classify_graph(mini_graph)
        refined = refine_with_users(raw, {T2A: 1000, E3: 50})
        assert refined[T2A] is ASType.ACCESS
        assert refined[T1A] is ASType.TRANSIT
        assert refined[E3] is ASType.ACCESS  # user signal wins over stub

    def test_classify_with_users_pipeline(self, mini_graph):
        refined = classify_with_users(mini_graph, {T2A: 10}, peering_rich=4)
        assert refined[CLOUD] is ASType.CONTENT
        assert refined[T2A] is ASType.ACCESS

    def test_type_breakdown(self):
        types = {1: ASType.ACCESS, 2: ASType.ACCESS, 3: ASType.CONTENT}
        counts = type_breakdown({1, 2, 3, 99}, types)
        assert counts[ASType.ACCESS] == 2
        assert counts[ASType.CONTENT] == 1
        assert counts[ASType.TRANSIT] == 0


class TestAugmentation:
    def test_new_neighbors_become_p2p(self):
        graph, _ = build_mini()
        report = augment_with_neighbors(graph, {CLOUD: [E3, CONTENT]})
        assert (
            graph.relationship_between(CLOUD, E3) is Relationship.PEER_PEER
        )
        assert report.added_p2p[CLOUD] == {E3, CONTENT}

    def test_existing_links_keep_type(self):
        graph, _ = build_mini()
        report = augment_with_neighbors(graph, {CLOUD: [T2A, T2B]})
        # AS11 stays the cloud's provider; AS12 stays a peer.
        assert (
            graph.relationship_between(T2A, CLOUD)
            is Relationship.PROVIDER_CUSTOMER
        )
        assert report.already_present[CLOUD] == {T2A, T2B}
        assert report.added_count(CLOUD) == 0

    def test_unknown_ases_added_by_default(self):
        graph, _ = build_mini()
        report = augment_with_neighbors(graph, {CLOUD: [40000]})
        assert 40000 in graph
        assert report.unknown_neighbors[CLOUD] == {40000}
        assert graph.relationship_between(CLOUD, 40000) is Relationship.PEER_PEER

    def test_unknown_ases_skippable(self):
        graph, _ = build_mini()
        augment_with_neighbors(graph, {CLOUD: [40000]}, add_unknown_ases=False)
        assert 40000 not in graph

    def test_self_neighbor_ignored(self):
        graph, _ = build_mini()
        report = augment_with_neighbors(graph, {CLOUD: [CLOUD]})
        assert report.added_count(CLOUD) == 0

    def test_total_neighbors_reporting(self):
        graph, _ = build_mini()
        before = graph.degree(CLOUD)
        report = augment_with_neighbors(graph, {CLOUD: [E3]})
        assert report.total_neighbors(graph, CLOUD) == before + 1
