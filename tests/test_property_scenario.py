"""Property-based tests on scenario generation and serialization."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.netgen import (
    build_scenario,
    scenario_from_dict,
    scenario_to_dict,
    tiny,
)

SCENARIO_SETTINGS = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestGenerationInvariants:
    @SCENARIO_SETTINGS
    @given(seed=st.integers(0, 10**6))
    def test_generated_graph_is_always_valid(self, seed):
        scenario = build_scenario(tiny(seed=seed))
        scenario.graph.validate()
        scenario.public_graph.validate()
        # the public view never contains an edge the truth lacks
        for record in scenario.public_graph.records():
            assert (
                scenario.graph.relationship_between(record.left, record.right)
                is record.relationship
            )

    @SCENARIO_SETTINGS
    @given(seed=st.integers(0, 10**6))
    def test_tier1_clique_and_cloud_invariants(self, seed):
        scenario = build_scenario(tiny(seed=seed))
        tier1 = sorted(scenario.tiers.tier1)
        for i, a in enumerate(tier1):
            assert not scenario.graph.providers(a)
            for b in tier1[i + 1 :]:
                assert b in scenario.graph.peers(a)
        for cloud in scenario.cloud_asns():
            assert scenario.graph.providers(cloud)
            assert not scenario.graph.customers(cloud)
            links = {
                n for (c, n) in scenario.interconnects if c == cloud
            }
            assert links == set(scenario.graph.neighbors(cloud))

    @SCENARIO_SETTINGS
    @given(seed=st.integers(0, 10**6))
    def test_users_and_prefixes_consistent(self, seed):
        scenario = build_scenario(tiny(seed=seed))
        assert set(scenario.prefixes) == set(scenario.graph.nodes())
        for asn, count in scenario.users.items():
            assert count >= 0
            assert asn in scenario.graph


class TestSerializationProperty:
    @SCENARIO_SETTINGS
    @given(seed=st.integers(0, 10**6))
    def test_round_trip_is_identity(self, seed):
        scenario = build_scenario(tiny(seed=seed))
        restored = scenario_from_dict(scenario_to_dict(scenario))
        assert set(restored.graph.records()) == set(scenario.graph.records())
        assert restored.tiers == scenario.tiers
        assert restored.users == scenario.users
        assert restored.prefixes == scenario.prefixes
        assert restored.config == scenario.config
        assert restored.pop_footprints == scenario.pop_footprints
        for key, links in scenario.interconnects.items():
            assert restored.interconnects[key] == links
