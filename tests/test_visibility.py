"""Unit tests for BGP monitor visibility analysis."""

import pytest

from repro.core import ConeEngine
from repro.netgen import build_scenario, tiny
from repro.topology import (
    Relationship,
    invisible_peering_fraction,
    marginal_monitor_gain,
    rank_monitor_candidates,
    visible_edges,
    visible_subgraph,
)

from .conftest import CLOUD, CONTENT, E1, E2, E3, E4, T1A, T1B, T2A, T2B


class TestVisibleEdges:
    def test_transit_always_visible(self, mini_graph):
        records = visible_edges(mini_graph, monitors=[])
        transit = [r for r in records if r.is_transit]
        truth_transit = [r for r in mini_graph.records() if r.is_transit]
        assert len(transit) == len(truth_transit)

    def test_no_monitors_hide_all_peerings(self, mini_graph):
        records = visible_edges(mini_graph, monitors=[])
        assert all(r.is_transit for r in records)

    def test_monitor_in_cone_reveals_peering(self, mini_graph):
        # E4 sits in E1's customer cone; E1 peers with the cloud, so that
        # peering becomes visible, but the cloud's other peerings stay dark
        records = visible_edges(mini_graph, monitors=[E4])
        peerings = {
            frozenset((r.left, r.right))
            for r in records
            if not r.is_transit
        }
        assert frozenset((CLOUD, E1)) in peerings
        assert frozenset((CLOUD, E2)) not in peerings

    def test_monitor_at_endpoint_reveals_peering(self, mini_graph):
        records = visible_edges(mini_graph, monitors=[E2])
        peerings = {
            frozenset((r.left, r.right))
            for r in records
            if not r.is_transit
        }
        assert frozenset((CLOUD, E2)) in peerings

    def test_tier1_monitor_sees_clique_peering(self, mini_graph):
        records = visible_edges(mini_graph, monitors=[E3])  # in AS1's cone
        peerings = {
            frozenset((r.left, r.right))
            for r in records
            if not r.is_transit
        }
        assert frozenset((T1A, T1B)) in peerings

    def test_shared_engine_accepted(self, mini_graph):
        engine = ConeEngine(mini_graph)
        a = visible_edges(mini_graph, [E4], engine)
        b = visible_edges(mini_graph, [E4])
        assert a == b


class TestVisibleSubgraph:
    def test_all_nodes_kept(self, mini_graph):
        public = visible_subgraph(mini_graph, monitors=[])
        assert sorted(public.nodes()) == sorted(mini_graph.nodes())

    def test_matches_scenario_public_graph(self):
        scenario = build_scenario(tiny())
        rebuilt = visible_subgraph(scenario.graph, scenario.monitors)
        assert rebuilt.edge_count() == scenario.public_graph.edge_count()
        assert {r for r in rebuilt.records()} == {
            r for r in scenario.public_graph.records()
        }


class TestInvisibleFraction:
    def test_cloud_peering_mostly_invisible_to_transit_monitors(
        self, mini_graph
    ):
        # a monitor below the Tier-1 sees none of the cloud's peerings:
        # it sits in no peer's customer cone
        fraction = invisible_peering_fraction(mini_graph, [E3], CLOUD)
        assert fraction == 1.0

    def test_no_peers_means_zero(self, mini_graph):
        assert invisible_peering_fraction(mini_graph, [E3], E3) == 0.0

    def test_monitor_inside_own_cone_sees_everything(self, mini_graph):
        fraction = invisible_peering_fraction(mini_graph, [E2, E4, T2B], CLOUD)
        assert fraction < 1.0


class TestMonitorPlacement:
    def test_marginal_gain_nonnegative(self, mini_graph):
        for candidate in mini_graph.nodes():
            assert marginal_monitor_gain(mini_graph, [E3], candidate) >= 0

    def test_edge_monitor_beats_redundant_transit_monitor(self, mini_graph):
        # E2 reveals the cloud-E2 peering; another monitor in AS1's cone
        # adds nothing new
        gain_edge = marginal_monitor_gain(mini_graph, [E3], E2)
        gain_transit = marginal_monitor_gain(mini_graph, [E3], 203)
        assert gain_edge > gain_transit

    def test_ranking(self, mini_graph):
        ranked = rank_monitor_candidates(
            mini_graph, [E3], mini_graph.nodes(), top=3
        )
        assert len(ranked) == 3
        gains = [gain for _, gain in ranked]
        assert gains == sorted(gains, reverse=True)
        assert ranked[0][1] > 0
