"""Bounded-LRU behaviour of the routing-state cache.

The regression target: the cache used to grow without bound across a
many-origin sweep.  These tests pin the bound (eviction actually caps the
number of retained states), the LRU order, the transparent recomputation
of evicted origins, and the hit/miss/eviction counters.
"""

from __future__ import annotations

import pytest

from .conftest import assert_states_equal, build_mini
from repro.bgpsim import RoutingStateCache


@pytest.fixture
def graph():
    return build_mini()[0]


class TestUnbounded:
    def test_default_keeps_everything(self, graph):
        cache = RoutingStateCache(graph)
        origins = sorted(graph.nodes())
        for origin in origins:
            cache.state_for(origin)
        assert len(cache) == len(origins)
        stats = cache.stats()
        assert stats.maxsize is None
        assert stats.evictions == 0
        assert stats.misses == len(origins)

    def test_repeated_requests_hit(self, graph):
        cache = RoutingStateCache(graph)
        first = cache.state_for(1)
        second = cache.state_for(1)
        assert first is second
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)


class TestBounded:
    def test_size_is_capped(self, graph):
        cache = RoutingStateCache(graph, maxsize=3)
        origins = sorted(graph.nodes())
        assert len(origins) > 3
        for origin in origins:
            cache.state_for(origin)
        assert len(cache) == 3
        stats = cache.stats()
        assert stats.size == 3
        assert stats.evictions == len(origins) - 3

    def test_lru_eviction_order(self, graph):
        cache = RoutingStateCache(graph, maxsize=2)
        cache.state_for(1)
        cache.state_for(2)
        cache.state_for(1)  # 2 is now least recently used
        cache.state_for(11)
        assert 1 in cache and 11 in cache and 2 not in cache

    def test_evicted_origin_recomputes_identically(self, graph):
        reference = RoutingStateCache(graph)
        cache = RoutingStateCache(graph, maxsize=1)
        origins = sorted(graph.nodes())[:4]
        first_pass = {o: cache.state_for(o) for o in origins}
        for origin in origins:
            recomputed = cache.state_for(origin)
            if origin != origins[-1]:
                assert recomputed is not first_pass[origin]
            assert_states_equal(
                recomputed,
                reference.state_for(origin),
                f"(recomputed origin={origin})",
            )

    def test_maxsize_validation(self, graph):
        with pytest.raises(ValueError):
            RoutingStateCache(graph, maxsize=0)
        with pytest.raises(ValueError):
            RoutingStateCache(graph, maxsize=-2)


class TestStats:
    def test_counters_and_hit_rate(self, graph):
        cache = RoutingStateCache(graph, maxsize=2)
        cache.state_for(1)
        cache.state_for(1)
        cache.state_for(2)
        cache.state_for(11)  # evicts 1
        cache.state_for(1)  # miss again
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 4
        assert stats.evictions == 2
        assert stats.hit_rate == pytest.approx(1 / 5)

    def test_empty_cache_hit_rate(self, graph):
        assert RoutingStateCache(graph).stats().hit_rate == 0.0

    def test_clear_resets(self, graph):
        cache = RoutingStateCache(graph, maxsize=2)
        cache.state_for(1)
        cache.state_for(1)
        cache.clear()
        assert len(cache) == 0
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.evictions) == (0, 0, 0)


class TestPrefetch:
    def test_prefetch_skips_cached(self, graph):
        cache = RoutingStateCache(graph)
        cache.state_for(1)
        computed = cache.prefetch([1, 2, 11])
        assert computed == 2
        assert len(cache) == 3

    def test_prefetch_respects_bound(self, graph):
        cache = RoutingStateCache(graph, maxsize=2)
        origins = sorted(graph.nodes())[:5]
        computed = cache.prefetch(origins)
        # only the *first* `maxsize` origins are worth computing: consumers
        # drain prefetched sweeps in input order, so these are the ones
        # read before any eviction; the rest are skipped, not
        # computed-then-evicted unread
        assert computed == 2
        assert len(cache) == 2
        assert origins[0] in cache and origins[1] in cache
        stats = cache.stats()
        assert stats.prefetch_skipped == 3
        assert stats.evictions == 0

    def test_prefetch_deduplicates(self, graph):
        cache = RoutingStateCache(graph)
        assert cache.prefetch([1, 1, 2, 2]) == 2

    def test_prefetch_chunks_to_batch_width(self, graph):
        cache = RoutingStateCache(graph, engine="compiled", batch=2)
        origins = sorted(graph.nodes())[:5]
        assert cache.prefetch(origins) == 5
        stats = cache.stats()
        assert stats.prefetch_chunks == 3  # ceil(5 / 2)
        assert stats.prefetch_skipped == 0

    def test_prefetch_batch_capped_at_maxsize(self, graph):
        cache = RoutingStateCache(
            graph, maxsize=3, engine="compiled", batch=64
        )
        origins = sorted(graph.nodes())[:5]
        assert cache.prefetch(origins) == 3
        stats = cache.stats()
        # width is capped at the bound, so the 3 kept origins fit one chunk
        assert stats.prefetch_chunks == 1
        assert stats.prefetch_skipped == 2
        assert all(origin in cache for origin in origins[:3])


class TestStatesForMany:
    def test_streams_in_input_order(self, graph):
        reference = RoutingStateCache(graph)
        cache = RoutingStateCache(graph, maxsize=2, batch=2)
        origins = sorted(graph.nodes())[:6]
        pairs = list(cache.states_for_many(origins))
        assert [origin for origin, _ in pairs] == origins
        for origin, state in pairs:
            assert_states_equal(
                state, reference.state_for(origin), f"(origin={origin})"
            )
        # the over-maxsize sweep still ran as batched chunks, never more
        # than maxsize states retained
        assert len(cache) <= 2
        assert cache.stats().prefetch_chunks >= 3

    def test_mixes_hits_and_batched_misses(self, graph):
        cache = RoutingStateCache(graph, batch=4)
        warm = sorted(graph.nodes())[:2]
        cache.prefetch(warm)
        origins = sorted(graph.nodes())[:6]
        pairs = dict(cache.states_for_many(origins))
        assert set(pairs) == set(origins)
        stats = cache.stats()
        assert stats.hits == 2
        assert stats.misses == 6  # 2 at prefetch + 4 in the sweep

    def test_duplicate_origins_hit_after_first(self, graph):
        cache = RoutingStateCache(graph, batch=4)
        pairs = list(cache.states_for_many([1, 1, 2, 1]))
        assert [origin for origin, _ in pairs] == [1, 1, 2, 1]
        assert pairs[0][1] is pairs[1][1] is pairs[3][1]
