"""Differential harness: compiled propagation kernel ≡ reference engine.

The compiled engine (``repro.bgpsim.compiled``) re-implements the three
Gao-Rexford phases over flat integer-indexed arrays; it is only safe to
make it the default if it is *bit-for-bit* equivalent to the reference
dict-of-objects engine.  This module proves it on seeded
synthetic-Internet scenarios across several seeds and two sizes,
exercises multi-seed leak configurations with ``peer_locked`` /
``excluded`` / restricted ``export_to`` seeds, verifies error parity on
bad inputs, checks the ``CompiledRoutingState`` fast paths against the
materialized routes, and runs the parallel sweep with the compiled
engine against the serial reference.

Set ``REPRO_TEST_WORKERS`` to change the parallel worker count (CI runs
the harness at 2).
"""

from __future__ import annotations

import os
import pickle
import random

import pytest

from .conftest import (
    assert_states_equal,
    build_mini,
    netgen_graph,
    random_internet,
    sample_origins,
)
from repro.bgpsim import (
    CompiledRoutingState,
    RoutingStateCache,
    Seed,
    propagate,
    propagate_compiled,
    propagate_many,
    propagate_reference,
    resolve_engine,
)
from repro.topology import ASGraph

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "4"))

#: (profile, scenario seed) — ≥3 seeds × 2 sizes, per the acceptance bar.
SCENARIOS = [
    ("tiny", 20200901),
    ("tiny", 7),
    ("tiny", 8),
    ("small", 20200901),
    ("small", 7),
    ("small", 8),
]


class TestEngineDispatch:
    def test_resolve_engine_explicit(self):
        assert resolve_engine("compiled") == "compiled"
        assert resolve_engine("reference") == "reference"

    def test_resolve_engine_default_is_compiled(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine(None) == "compiled"

    def test_resolve_engine_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        assert resolve_engine(None) == "reference"
        # an explicit argument beats the environment
        assert resolve_engine("compiled") == "compiled"

    def test_resolve_engine_rejects_unknown(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("vectorized")
        monkeypatch.setenv("REPRO_ENGINE", "bogus")
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine(None)

    def test_propagate_dispatches(self, mini_graph):
        compiled = propagate(mini_graph, Seed(asn=100), engine="compiled")
        reference = propagate(mini_graph, Seed(asn=100), engine="reference")
        assert isinstance(compiled, CompiledRoutingState)
        assert not isinstance(reference, CompiledRoutingState)
        assert_states_equal(reference, compiled, "(dispatch)")


class TestDifferentialNetgen:
    """Reference vs compiled on seeded synthetic-Internet scenarios."""

    @pytest.mark.parametrize("profile_name,seed", SCENARIOS)
    def test_states_identical(self, profile_name, seed):
        graph = netgen_graph(profile_name, seed=seed)
        origins = sample_origins(graph, 40, seed=seed)
        for origin in origins:
            reference = propagate_reference(graph, (Seed(asn=origin),))
            compiled = propagate_compiled(graph, (Seed(asn=origin),))
            assert_states_equal(
                reference,
                compiled,
                f"({profile_name}, seed={seed}, origin={origin})",
            )

    @pytest.mark.parametrize("profile_name,seed", SCENARIOS)
    def test_multi_seed_leaks_identical(self, profile_name, seed):
        """Leak tasks with peer_locked, excluded and restricted export_to."""
        graph = netgen_graph(profile_name, seed=seed)
        nodes = sorted(graph.nodes())
        rng = random.Random(seed * 31 + 1)
        for trial in range(8):
            origin, leaker = rng.sample(nodes, 2)
            export = None
            if trial % 2:  # announce to a restricted neighbor subset
                neighbors = sorted(graph.neighbors(origin))
                if neighbors:
                    export = frozenset(
                        rng.sample(
                            neighbors, k=max(1, len(neighbors) // 2)
                        )
                    )
            seeds = (
                Seed(asn=origin, key="origin", export_to=export),
                Seed(asn=leaker, key="leak", initial_length=rng.randint(0, 3)),
            )
            excluded = frozenset(
                a
                for a in rng.sample(nodes, 6)
                if a not in (origin, leaker)
            )
            locked = frozenset(rng.sample(nodes, 10))
            kwargs = dict(
                excluded=excluded, peer_locked=locked, locked_origin=origin
            )
            reference = propagate_reference(graph, seeds, **kwargs)
            compiled = propagate_compiled(graph, seeds, **kwargs)
            assert_states_equal(
                reference,
                compiled,
                f"({profile_name}, seed={seed}, leak {origin}->{leaker})",
            )

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_internet_identical(self, seed):
        rng = random.Random(seed)
        graph = random_internet(rng, n_tier1=4, n_transit=8, n_edge=40)
        for origin in sorted(graph.nodes()):
            reference = propagate_reference(graph, (Seed(asn=origin),))
            compiled = propagate_compiled(graph, (Seed(asn=origin),))
            assert_states_equal(
                reference, compiled, f"(random seed={seed}, origin={origin})"
            )

    def test_initial_length_and_hierarchy_seed(self, mini_graph):
        seeds = (Seed(asn=100, key="origin", initial_length=2),)
        assert_states_equal(
            propagate_reference(mini_graph, seeds),
            propagate_compiled(mini_graph, seeds),
            "(initial_length)",
        )


class TestErrorParity:
    """Both engines reject bad input with the same exception and message."""

    @pytest.mark.parametrize("engine", ["compiled", "reference"])
    def test_no_seeds(self, mini_graph, engine):
        with pytest.raises(ValueError, match="at least one seed"):
            propagate(mini_graph, (), engine=engine)

    @pytest.mark.parametrize("engine", ["compiled", "reference"])
    def test_unknown_seed(self, mini_graph, engine):
        with pytest.raises(KeyError, match="987654"):
            propagate(mini_graph, Seed(asn=987654), engine=engine)

    @pytest.mark.parametrize("engine", ["compiled", "reference"])
    def test_excluded_seed(self, mini_graph, engine):
        with pytest.raises(ValueError, match="excluded"):
            propagate(
                mini_graph, Seed(asn=100), excluded={100}, engine=engine
            )

    @pytest.mark.parametrize("engine", ["compiled", "reference"])
    def test_duplicate_seed(self, mini_graph, engine):
        seeds = (Seed(asn=100, key="a"), Seed(asn=100, key="b"))
        with pytest.raises(ValueError, match="duplicate seed"):
            propagate(mini_graph, seeds, engine=engine)


class TestCompiledStateAPI:
    """The lazy array-backed state behaves exactly like the reference."""

    def _pair(self):
        graph = netgen_graph("tiny", seed=7)
        seeds = (Seed(asn=sorted(graph.nodes())[0]),)
        return graph, propagate_reference(graph, seeds), propagate_compiled(
            graph, seeds
        )

    def test_fast_paths_match_before_materialization(self):
        graph, reference, compiled = self._pair()
        # exercise the array fast paths *before* touching .routes
        assert compiled._materialized is None
        assert compiled.reachable_ases() == reference.reachable_ases()
        for asn in sorted(graph.nodes()) + [987654]:
            assert compiled.has_route(asn) == reference.has_route(asn)
            assert compiled.path_length(asn) == reference.path_length(asn)
            assert compiled.origins_at(asn) == reference.origins_at(asn)
        assert compiled._materialized is None  # still not materialized

    def test_dag_utilities_match(self):
        graph, reference, compiled = self._pair()
        for asn in sample_origins(graph, 15, seed=3):
            assert compiled.count_best_paths(asn) == (
                reference.count_best_paths(asn)
            )
            assert sorted(compiled.enumerate_best_paths(asn)) == sorted(
                reference.enumerate_best_paths(asn)
            )
            for path in reference.enumerate_best_paths(asn, limit=5):
                assert compiled.contains_path(path)

    def test_pickle_roundtrip(self):
        _, reference, compiled = self._pair()
        compiled.routes  # materialize, then check pickling drops the dict
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone._materialized is None
        assert_states_equal(reference, clone, "(pickle roundtrip)")

    def test_pickled_state_smaller_than_reference(self):
        _, reference, compiled = self._pair()
        assert len(pickle.dumps(compiled)) < len(pickle.dumps(reference))


class TestParallelCompiled:
    """Parallel compiled sweep ≡ serial reference sweep."""

    def test_propagate_many(self):
        graph = netgen_graph("small", seed=7)
        origins = sample_origins(graph, 30, seed=2)
        reference = [
            propagate_reference(graph, (Seed(asn=o),)) for o in origins
        ]
        parallel = list(
            propagate_many(
                graph, origins, workers=WORKERS, engine="compiled"
            )
        )
        for origin, r, p in zip(origins, reference, parallel):
            assert isinstance(p, CompiledRoutingState)
            assert_states_equal(r, p, f"(parallel compiled, origin={origin})")

    def test_cache_stores_compact_states(self):
        graph = netgen_graph("tiny", seed=8)
        origins = sample_origins(graph, 10, seed=4)
        cache = RoutingStateCache(graph, engine="compiled")
        cache.prefetch(origins, workers=WORKERS)
        for origin in origins:
            state = cache.state_for(origin)
            assert isinstance(state, CompiledRoutingState)
            assert_states_equal(
                propagate_reference(graph, (Seed(asn=origin),)),
                state,
                f"(cache origin={origin})",
            )

    def test_reference_engine_cache(self):
        graph, _ = build_mini()
        cache = RoutingStateCache(graph, engine="reference")
        assert not isinstance(cache.state_for(100), CompiledRoutingState)


class TestDeepChainRegression:
    """count_best_paths must not recurse (satellite: recursion blowup)."""

    CHAIN = 3000  # far beyond CPython's default ~1000 recursion limit

    def _chain_graph(self) -> ASGraph:
        graph = ASGraph()
        for i in range(self.CHAIN):
            graph.add_p2c(i, i + 1)  # 0 <- 1 <- ... <- CHAIN
        return graph

    @pytest.mark.parametrize("engine", ["compiled", "reference"])
    def test_deep_provider_chain(self, engine):
        graph = self._chain_graph()
        state = propagate(graph, Seed(asn=self.CHAIN), engine=engine)
        assert state.path_length(0) == self.CHAIN
        assert state.count_best_paths(0) == 1
        assert state.origins_at(0) == {"origin"}
