"""The query service, unit (no sockets) and end-to-end over HTTP.

Every served answer is diffed against values recomputed live —
``propagate`` / ``reliance_from_state`` / ``local_hegemony`` with no
shared cache — so the serve stack can never drift from the engine.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import urllib.error
import urllib.request

import pytest

from .conftest import netgen_graph, sample_origins
from repro.bgpsim import RoutingStateCache, Seed, precompute_shards, propagate
from repro.bgpsim.shards import ShardStore
from repro.core.hegemony import local_hegemony
from repro.core.reliance import reliance_from_state
from repro.serve import (
    QueryService,
    smoke_check,
    start_server_thread,
)


@pytest.fixture(scope="module")
def tiny():
    graph = netgen_graph("tiny")
    nodes = sorted(graph.nodes())
    return graph, nodes


# ---------------------------------------------------------------------------
# QueryService unit (no sockets)
# ---------------------------------------------------------------------------


def test_endpoints_match_live_engine(tiny):
    graph, nodes = tiny
    service = QueryService(graph)
    origin, target = nodes[2], nodes[-3]
    live = propagate(graph, Seed(asn=origin))

    status, got = service.answer(
        "/reachable", {"origin": str(origin), "target": str(target)}
    )
    assert status == 200
    assert got["reachable"] == live.has_route(target)
    live_class = live.route_class(target)
    assert got["route_class"] == (
        None if live_class is None else live_class.name
    )
    assert got["path_length"] == live.path_length(target)

    status, got = service.answer(
        "/path_length", {"origin": str(origin), "target": str(target)}
    )
    assert (status, got["path_length"]) == (200, live.path_length(target))

    status, got = service.answer(
        "/reliance", {"origin": str(origin), "target": str(target)}
    )
    assert status == 200
    assert got["reliance"] == reliance_from_state(live).get(target, 0.0)

    status, got = service.answer(
        "/hegemony", {"origin": str(origin), "target": str(target)}
    )
    assert status == 200
    assert got["hegemony"] == local_hegemony(
        graph, origin, target, cache=RoutingStateCache(graph)
    )

    status, got = service.answer(
        "/rib", {"origin": str(origin), "asn": str(target)}
    )
    assert status == 200
    node = live.route(target)
    if node is None:
        assert got["route"] is None
    else:
        assert got["route"] == {
            "route_class": node.route_class.name,
            "length": node.length,
            "parents": sorted(node.parents),
            "origins": sorted(node.origins),
        }


def test_error_statuses(tiny):
    graph, nodes = tiny
    service = QueryService(graph)
    origin = str(nodes[0])
    assert service.answer("/reachable", {"origin": origin})[0] == 400
    assert (
        service.answer("/reachable", {"origin": "x", "target": origin})[0]
        == 400
    )
    assert (
        service.answer(
            "/reachable", {"origin": "999999999", "target": origin}
        )[0]
        == 404
    )
    status, payload = service.answer("/nope", {})
    assert status == 404 and "/reachable" in payload["endpoints"]


def test_stats_endpoint_reports_tiers(tiny, tmp_path):
    graph, nodes = tiny
    target = precompute_shards(graph, tmp_path, workers=1)
    with ShardStore.open(target, graph=graph) as store:
        service = QueryService(graph, shards=store)
        service.answer(
            "/path_length",
            {"origin": str(nodes[0]), "target": str(nodes[1])},
        )
        status, stats = service.answer("/stats", {})
        assert status == 200
        assert stats["tiers"] == {
            "lru": 0,
            "metric": 0,
            "disk": 1,
            "computed": 0,
        }
        assert stats["shards"]["origins"] == len(graph)
        assert stats["requests"] == 2
        assert stats["pid"] == os.getpid()
        hist = stats["latency"]["/path_length"]
        assert hist["count"] == 1
        assert hist["p50_us"] is not None and hist["p99_us"] >= hist["p50_us"]


# ---------------------------------------------------------------------------
# HTTP end-to-end
# ---------------------------------------------------------------------------


def test_http_round_trip_and_keep_alive(tiny):
    graph, nodes = tiny
    service = QueryService(graph)
    origin, target = nodes[1], nodes[-1]
    live = propagate(graph, Seed(asn=origin))
    with start_server_thread(service) as handle:
        # several requests over ONE keep-alive connection
        conn = http.client.HTTPConnection(handle.host, handle.port)
        try:
            for _ in range(3):
                conn.request(
                    "GET", f"/path_length?origin={origin}&target={target}"
                )
                response = conn.getresponse()
                assert response.status == 200
                got = json.loads(response.read())
                assert got["path_length"] == live.path_length(target)
            conn.request("POST", "/reachable")
            assert conn.getresponse().status == 405
        finally:
            conn.close()
        # error bodies survive the HTTP layer
        try:
            urllib.request.urlopen(
                f"{handle.base_url}/reachable?origin=999999999"
                f"&target={target}"
            )
        except urllib.error.HTTPError as exc:
            assert exc.code == 404
            assert "not in graph" in json.loads(exc.read())["error"]
        else:  # pragma: no cover
            pytest.fail("expected a 404")


def test_concurrent_requests_batch_cold_origins(tiny):
    graph, nodes = tiny
    service = QueryService(graph)
    origins = sample_origins(graph, 12, seed=13)
    target = nodes[0]
    results: dict[int, int | None] = {}
    errors: list[Exception] = []
    with start_server_thread(service, window=0.02) as handle:

        def query(origin: int) -> None:
            try:
                with urllib.request.urlopen(
                    f"{handle.base_url}/path_length"
                    f"?origin={origin}&target={target}"
                ) as response:
                    results[origin] = json.loads(response.read())[
                        "path_length"
                    ]
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=query, args=(o,)) for o in origins
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        batcher = handle.batcher
    assert not errors
    for origin in origins:
        live = propagate(graph, Seed(asn=origin))
        assert results[origin] == live.path_length(target)
    # the cold burst coalesced into fewer sweeps than requests
    assert batcher.batched_origins >= 1
    assert batcher.batches <= len(origins)


def test_smoke_check_passes_with_and_without_shards(tiny, tmp_path):
    graph, _nodes = tiny
    assert smoke_check(QueryService(graph)) == []
    target = precompute_shards(graph, tmp_path, workers=1)
    with ShardStore.open(target, graph=graph) as store:
        assert smoke_check(QueryService(graph, shards=store)) == []
