"""Unit tests for the AS hegemony metric."""

import random

import pytest

from repro.bgpsim import Seed, propagate
from repro.bgpsim.cache import RoutingStateCache
from repro.core import (
    global_hegemony,
    local_hegemony,
    path_cross_fractions,
    trimmed_mean,
)

from .conftest import CLOUD, CONTENT, E1, E2, E3, E4, T1A, T1B, T2A, T2B


class TestTrimmedMean:
    def test_plain_mean_when_small(self):
        assert trimmed_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_trims_extremes(self):
        values = [0.0] * 2 + [0.5] * 16 + [1.0] * 2
        assert trimmed_mean(values, trim=0.1) == pytest.approx(0.5)

    def test_empty(self):
        assert trimmed_mean([]) == 0.0


class TestCrossFractions:
    def test_fractions_from_mini(self, mini_graph):
        state = propagate(mini_graph, Seed(asn=CLOUD))
        fractions = path_cross_fractions(state, T2A)
        # AS11 carries AS1's only path (via 11) and AS203's (via 1)
        assert fractions[T2A] == 1.0
        assert fractions[T1A] == 1.0
        assert fractions[E3] == 1.0
        # direct peers never cross AS11
        assert fractions[T2B] == 0.0
        assert fractions[E2] == 0.0
        assert fractions[CLOUD] == 0.0  # the origin

    def test_absent_target(self, mini_graph):
        state = propagate(mini_graph, Seed(asn=CLOUD), excluded={T2A})
        assert path_cross_fractions(state, T2A) == {}

    def test_fraction_range(self, mini_graph):
        state = propagate(mini_graph, Seed(asn=CLOUD))
        for target in mini_graph.nodes():
            for value in path_cross_fractions(state, target).values():
                assert 0.0 <= value <= 1.0


class TestHegemony:
    def test_local_hegemony_of_sole_provider(self, mini_graph):
        # everything AS204 is reached through goes via AS201
        value = local_hegemony(mini_graph, E4, E1)
        assert value > 0.9

    def test_local_hegemony_of_unused_as(self, mini_graph):
        value = local_hegemony(mini_graph, CLOUD, E4)
        assert value == 0.0

    def test_global_hegemony_ranks_transit_over_stubs(self, mini_graph):
        scores = global_hegemony(
            mini_graph,
            targets=[T2A, T2B, E4, CONTENT],
            origins=sorted(mini_graph.nodes()),
        )
        assert scores[T2A] > scores[E4]
        assert scores[T2B] > scores[CONTENT]
        for value in scores.values():
            assert 0.0 <= value <= 1.0

    def test_cache_reuse(self, mini_graph):
        cache = RoutingStateCache(mini_graph)
        local_hegemony(mini_graph, CLOUD, T2A, cache)
        local_hegemony(mini_graph, CLOUD, T2B, cache)
        assert len(cache) == 1  # one origin, one propagation

    def test_sampled_origins(self, mini_graph):
        scores = global_hegemony(
            mini_graph, targets=[T2A], sample=4, rng=random.Random(1)
        )
        assert set(scores) == {T2A}
