"""Shared fixtures and helpers: a hand-analyzable mini-Internet, random
topologies, and the state-equality / valley-free assertions used by the
serial-vs-parallel differential harness.

The ``mini`` fixture builds a 10-AS topology whose reachability, cones,
reliance and leak behaviour are all computed by hand in the tests:

* Tier-1 clique: AS1 — AS2 (peers)
* Tier-2: AS11 (customer of AS1), AS12 (customer of AS2), AS11—AS12 peers
* Cloud: AS100, transit provider AS11, peers {AS2, AS12, AS201, AS202}
* Edges: AS201 (customer of AS11, provider of AS204), AS202 (customer of
  AS12), AS203 (customer of AS1), AS301 content (customer of AS12)
"""

from __future__ import annotations

import random

import pytest

from repro.topology import ASGraph, TierAssignment

T1A, T1B = 1, 2
T2A, T2B = 11, 12
CLOUD = 100
E1, E2, E3, E4 = 201, 202, 203, 204
CONTENT = 301


def build_mini() -> tuple[ASGraph, TierAssignment]:
    graph = ASGraph()
    graph.add_p2c(T1A, T2A)
    graph.add_p2c(T1B, T2B)
    graph.add_p2c(T2A, CLOUD)
    graph.add_p2c(T2A, E1)
    graph.add_p2c(T2B, E2)
    graph.add_p2c(T2B, CONTENT)
    graph.add_p2c(T1A, E3)
    graph.add_p2c(E1, E4)
    graph.add_p2p(T1A, T1B)
    graph.add_p2p(T2A, T2B)
    graph.add_p2p(CLOUD, T2B)
    graph.add_p2p(CLOUD, T1B)
    graph.add_p2p(CLOUD, E1)
    graph.add_p2p(CLOUD, E2)
    tiers = TierAssignment(
        tier1=frozenset({T1A, T1B}), tier2=frozenset({T2A, T2B})
    )
    return graph, tiers


@pytest.fixture
def mini() -> tuple[ASGraph, TierAssignment]:
    return build_mini()


@pytest.fixture
def mini_graph(mini) -> ASGraph:
    return mini[0]


@pytest.fixture
def mini_tiers(mini) -> TierAssignment:
    return mini[1]


def random_internet(
    rng: random.Random,
    n_tier1: int = 3,
    n_transit: int = 6,
    n_edge: int = 20,
    peer_prob: float = 0.2,
) -> ASGraph:
    """A random valley-free-plausible topology for property tests.

    Tier-1s form a clique; each transit AS buys from 1-2 Tier-1s; each edge
    AS buys from 1-2 transit ASes; random peerings are sprinkled between
    same-or-adjacent layers without contradicting transit edges.
    """
    graph = ASGraph()
    tier1 = list(range(1, n_tier1 + 1))
    transit = list(range(100, 100 + n_transit))
    edge = list(range(1000, 1000 + n_edge))
    for i, a in enumerate(tier1):
        graph.add_as(a)
        for b in tier1[i + 1 :]:
            graph.add_p2p(a, b)
    for t in transit:
        for provider in rng.sample(tier1, k=rng.randint(1, min(2, n_tier1))):
            graph.add_p2c(provider, t)
    for e in edge:
        for provider in rng.sample(transit, k=rng.randint(1, 2)):
            if graph.relationship_between(provider, e) is None:
                graph.add_p2c(provider, e)
    candidates = transit + edge
    for i, a in enumerate(candidates):
        for b in candidates[i + 1 :]:
            if rng.random() < peer_prob and graph.relationship_between(a, b) is None:
                graph.add_p2p(a, b)
    return graph


def netgen_graph(profile_name: str = "tiny", seed: int = 20200901) -> ASGraph:
    """The ground-truth graph of a seeded synthetic-Internet scenario."""
    from repro.netgen import build_scenario, profile

    return build_scenario(profile(profile_name, seed=seed)).graph


def sample_origins(graph, count: int, seed: int = 0) -> list[int]:
    """A deterministic sample of ``count`` ASNs from ``graph``."""
    nodes = sorted(graph.nodes())
    if len(nodes) <= count:
        return nodes
    return sorted(random.Random(seed).sample(nodes, count))


def assert_states_equal(a, b, context: str = "") -> None:
    """Assert two ``RoutingState`` objects are bit-for-bit equivalent.

    Compares the full tied-best equivalence class at every AS — route
    class, AS-path length, parent set, and reachable seed keys — which is
    everything downstream consumers (reliance, leaks, traceroutes,
    collectors) ever read.
    """
    assert a.seed_asns == b.seed_asns, f"seed sets differ {context}"
    assert a.routes.keys() == b.routes.keys(), (
        f"routed AS sets differ {context}: "
        f"only-left={sorted(a.routes.keys() - b.routes.keys())[:5]} "
        f"only-right={sorted(b.routes.keys() - a.routes.keys())[:5]}"
    )
    for asn in a.routes:
        ra, rb = a.routes[asn], b.routes[asn]
        assert (
            ra.route_class == rb.route_class
            and ra.length == rb.length
            and ra.parents == rb.parents
            and ra.origins == rb.origins
        ), (
            f"route at AS{asn} differs {context}: "
            f"({ra.route_class.name}, {ra.length}, {sorted(ra.parents)}, "
            f"{sorted(ra.origins)}) != "
            f"({rb.route_class.name}, {rb.length}, {sorted(rb.parents)}, "
            f"{sorted(rb.origins)})"
        )


def assert_valley_free(graph: ASGraph, path: tuple[int, ...]) -> None:
    """Assert ``path`` (receiver first, origin last) is valley-free.

    Walking in propagation direction (origin -> receiver), the hop types
    must match ``up* peer? down*``: zero or more hops from customer to
    provider, at most one peer hop, then only provider-to-customer hops.
    """
    hops = list(reversed(path))  # origin first
    stage = "up"
    for x, y in zip(hops, hops[1:]):
        if y in graph.providers(x):
            hop = "up"
        elif y in graph.peers(x):
            hop = "peer"
        elif y in graph.customers(x):
            hop = "down"
        else:
            raise AssertionError(f"no edge AS{x}-AS{y} on path {path}")
        if hop == "up":
            assert stage == "up", f"valley (late up-hop) in {path}"
        elif hop == "peer":
            assert stage == "up", f"valley (late peer hop) in {path}"
            stage = "peer-taken"
        else:
            stage = "down"
