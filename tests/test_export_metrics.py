"""Unit tests for CSV export and the metrics-comparison extension."""

import csv

import pytest

from repro.experiments import (
    build_context,
    export_results,
    metrics_comparison,
    run_all,
)


@pytest.fixture(scope="module")
def ctx():
    return build_context("tiny")


@pytest.fixture(scope="module")
def ctx2015():
    return build_context("tiny2015")


@pytest.fixture(scope="module")
def results(ctx, ctx2015):
    return run_all(ctx, ctx2015, leaks_per_config=6)


class TestExport:
    def test_exports_every_known_result(self, results, tmp_path):
        written = export_results(results, tmp_path / "csv")
        names = {path.name for path in written}
        expected = {
            "fig2_reachability.csv",
            "table1_2015.csv",
            "table1_2020.csv",
            "fig3_scatter.csv",
            "fig4_unreachable.csv",
            "fig6_reliance_histogram.csv",
            "table2_top_reliance.csv",
            "fig7_8_leak_cdfs.csv",
            "fig9_users_detoured.csv",
            "fig10_over_time.csv",
            "fig11_pop_overlap.csv",
            "fig12_coverage.csv",
            "table3_rdns.csv",
            "sec4_peer_counts.csv",
            "sec5_stage_rates.csv",
            "appendixA_path_match.csv",
            "appendixB_tier1_reliance.csv",
            "appendixD_geolocation.csv",
            "fig13_path_lengths.csv",
            "metrics_comparison.csv",
        }
        assert expected <= names

    def test_csvs_are_parseable_with_headers(self, results, tmp_path):
        written = export_results(results, tmp_path / "csv2")
        for path in written:
            with open(path, newline="") as handle:
                rows = list(csv.reader(handle))
            assert rows, path
            header = rows[0]
            assert all(header), path
            for row in rows[1:]:
                assert len(row) == len(header), path

    def test_fig2_contents(self, results, tmp_path):
        export_results(results, tmp_path / "csv3")
        with open(tmp_path / "csv3" / "fig2_reachability.csv", newline="") as f:
            rows = list(csv.DictReader(f))
        clouds = [r for r in rows if r["cohort"] == "cloud"]
        assert len(clouds) == 4
        for row in rows:
            assert int(row["hierarchy_free"]) <= int(row["provider_free"])

    def test_unknown_keys_skipped(self, tmp_path):
        written = export_results({"mystery": object()}, tmp_path / "csv4")
        assert written == []


class TestMetricsComparison:
    def test_rows_cover_clouds_and_hierarchy(self, ctx):
        result = metrics_comparison.run(ctx, hegemony_sample=10)
        names = {row.name for row in result.rows}
        assert {"Google", "Microsoft", "IBM", "Amazon"} <= names
        assert len(result.rows) == 4 + len(ctx.tiers.tier1) + len(
            ctx.tiers.tier2
        )

    def test_clouds_have_no_cone_but_high_hfr(self, ctx):
        result = metrics_comparison.run(ctx, hegemony_sample=10)
        google = result.row("Google")
        assert google.customer_cone == 0
        assert google.hierarchy_free > 0
        # Google ranks much better on HFR than on customer cone
        assert result.rank_of("Google", "hierarchy_free") < result.rank_of(
            "Google", "customer_cone"
        )

    def test_hegemony_in_range_and_renders(self, ctx):
        result = metrics_comparison.run(ctx, hegemony_sample=8)
        for row in result.rows:
            assert 0.0 <= row.hegemony <= 1.0
        assert "hegemony" in result.render()
