"""Unit tests for CAIDA relationship file parsing and serialization."""

import bz2

import pytest

from repro.topology import (
    CaidaFormatError,
    Relationship,
    dump_graph,
    dumps_graph,
    load_graph,
    parse_graph,
    parse_line,
)

SERIAL1 = """\
# inferred AS relationships
# provider|customer|-1, peer|peer|0
1|11|-1
2|12|-1
1|2|0
11|12|0
"""

SERIAL2 = """\
# serial-2 with source field
1|11|-1|bgp
1|2|0|bgp
100|12|0|mlp
"""


class TestParsing:
    def test_parse_line_serial1(self):
        record = parse_line("3356|15169|-1")
        assert record.left == 3356
        assert record.right == 15169
        assert record.relationship is Relationship.PROVIDER_CUSTOMER
        assert record.source == ""

    def test_parse_line_serial2(self):
        record = parse_line("6939|8075|0|mlp")
        assert record.relationship is Relationship.PEER_PEER
        assert record.source == "mlp"

    def test_parse_rejects_garbage(self):
        with pytest.raises(CaidaFormatError):
            parse_line("not a record")
        with pytest.raises(CaidaFormatError):
            parse_line("1|2")
        with pytest.raises(CaidaFormatError):
            parse_line("1|2|7")
        with pytest.raises(CaidaFormatError):
            parse_line("a|b|-1")
        with pytest.raises(CaidaFormatError):
            parse_line("5|5|0")

    def test_parse_graph_serial1(self):
        graph = parse_graph(SERIAL1)
        assert len(graph) == 4
        assert graph.customers(1) == {11}
        assert graph.peers(11) == {12}

    def test_parse_graph_serial2(self):
        graph = parse_graph(SERIAL2)
        assert graph.peers(100) == {12}

    def test_duplicate_lines_tolerated(self):
        graph = parse_graph("1|2|-1\n1|2|-1\n3|4|0\n4|3|0\n")
        assert graph.edge_count() == 2

    def test_conflicting_lines_raise(self):
        with pytest.raises(Exception):
            parse_graph("1|2|-1\n1|2|0\n")


class TestRoundTrip:
    def test_dumps_and_parse_roundtrip(self, mini_graph):
        text = dumps_graph(mini_graph, serial=2)
        again = parse_graph(text)
        assert sorted(again.nodes()) == sorted(mini_graph.nodes())
        assert again.edge_count() == mini_graph.edge_count()
        for record in mini_graph.records():
            assert (
                again.relationship_between(record.left, record.right)
                is record.relationship
            )

    def test_serial1_has_three_fields(self, mini_graph):
        text = dumps_graph(mini_graph, serial=1)
        for line in text.splitlines():
            assert len(line.split("|")) == 3

    def test_file_roundtrip(self, mini_graph, tmp_path):
        path = tmp_path / "rel.txt"
        dump_graph(mini_graph, path, header="test snapshot")
        graph = load_graph(path)
        assert graph.edge_count() == mini_graph.edge_count()
        assert path.read_text().startswith("# test snapshot")

    def test_bz2_roundtrip(self, mini_graph, tmp_path):
        path = tmp_path / "rel.txt.bz2"
        dump_graph(mini_graph, path, serial=1)
        with bz2.open(path, "rt") as handle:
            assert "|" in handle.readline()
        graph = load_graph(path)
        assert graph.edge_count() == mini_graph.edge_count()

    def test_invalid_serial_rejected(self, mini_graph, tmp_path):
        with pytest.raises(ValueError):
            dump_graph(mini_graph, tmp_path / "x.txt", serial=3)
