"""Differential + failure-mode harness for the on-disk routing shards.

The contract under test: ``precompute_shards`` → ``ShardReader``/
``ShardStore`` must hand back, zero-copy off an mmap, exactly the states
live propagation produces — across netgen seeds, for the *full*
small-profile origin set, through the cache's disk tier, and never from
a torn, truncated, or wrong-graph shard file.
"""

from __future__ import annotations

import json
import pickle
import struct
import threading
import tracemalloc

import pytest

from .conftest import assert_states_equal, netgen_graph, sample_origins
from repro.bgpsim import (
    RoutingStateCache,
    Seed,
    graph_digest,
    precompute_shards,
    propagate_batch,
    propagate_compiled,
)
from repro.bgpsim.shards import (
    MANIFEST_NAME,
    ShardError,
    ShardReader,
    ShardStore,
    ShardWriter,
)


def write_shard(tmp_path, graph, origins, name="one.shard"):
    path = tmp_path / name
    with ShardWriter(path, graph) as writer:
        for origin, view in propagate_batch(graph, tuple(origins)).views():
            writer.add(origin, view)
    return path


def assert_same_routing(disk, live, context=""):
    """Cheap array-level equality: class/length per node are canonical
    (identical regardless of parent-pool layout), so they compare as
    flat lists without materializing routes."""
    assert list(disk._asns) == list(live._asns), context
    assert list(disk._route_class) == list(live._route_class), context
    assert list(disk._length) == list(live._length), context
    assert sorted(disk._routed) == sorted(live._routed), context


# ---------------------------------------------------------------------------
# format round-trip
# ---------------------------------------------------------------------------


def test_header_and_offset_index_round_trip(tmp_path):
    graph = netgen_graph("tiny")
    origins = sample_origins(graph, 12, seed=1)
    path = write_shard(tmp_path, graph, origins)
    with ShardReader(path) as reader:
        assert reader.n_nodes == len(graph)
        assert reader.digest == graph_digest(graph)
        assert sorted(reader.origins) == sorted(origins)
        assert len(reader) == len(origins)
        assert origins[0] in reader
        assert 999_999_999 not in reader
        with pytest.raises(KeyError):
            reader.state_for(999_999_999)


@pytest.mark.parametrize("seed", [20200901, 7, 1234])
def test_mmap_states_equal_pickled_states(tmp_path, seed):
    """Zero-copy mmap states ≡ the pickled standalone states the batch
    views produce, on multiple netgen seeds."""
    graph = netgen_graph("tiny", seed=seed)
    origins = sample_origins(graph, 16, seed=seed)
    path = write_shard(tmp_path, graph, origins, name=f"s{seed}.shard")
    views = dict(propagate_batch(graph, tuple(origins)).views())
    with ShardReader(path) as reader:
        for origin in origins:
            pickled = pickle.loads(pickle.dumps(views[origin]))
            disk = reader.state_for(origin)
            assert_states_equal(disk, pickled, f"origin={origin} seed={seed}")
            # the arrays really are aliases onto the map, not copies
            assert disk._length.obj is reader._mm


def test_full_small_profile_differential(tmp_path):
    """Acceptance: precompute + read back the *full* small-profile
    origin set; every state equals ``propagate_compiled`` output."""
    graph = netgen_graph("small")
    target = precompute_shards(graph, tmp_path / "out", workers=1)
    with ShardStore.open(target, graph=graph) as store:
        every = sorted(graph.nodes())
        assert sorted(store.origins()) == every
        for origin in every:
            live = propagate_compiled(graph, (Seed(asn=origin),))
            assert_same_routing(
                store.state_for(origin), live, f"origin={origin}"
            )
        # parent sets / origins on a sample, through full materialization
        for origin in sample_origins(graph, 25, seed=3):
            live = propagate_compiled(graph, (Seed(asn=origin),))
            assert_states_equal(
                store.state_for(origin), live, f"origin={origin}"
            )


def test_precompute_is_idempotent_and_sharded(tmp_path):
    graph = netgen_graph("tiny")
    origins = sample_origins(graph, 10, seed=2)
    target = precompute_shards(
        graph, tmp_path / "out", origins=origins, workers=1, shard_size=4
    )
    manifest = json.loads((target / MANIFEST_NAME).read_text())
    assert manifest["graph_digest"] == graph_digest(graph)
    assert len(manifest["shards"]) == 3  # 4 + 4 + 2 origins
    assert sum(s["origins"] for s in manifest["shards"]) == 10
    stamps = {p.name: p.stat().st_mtime_ns for p in target.iterdir()}
    # a second run over a subset reuses the complete corpus untouched
    again = precompute_shards(
        graph, tmp_path / "out", origins=origins[:4], workers=1
    )
    assert again == target
    assert {p.name: p.stat().st_mtime_ns for p in target.iterdir()} == stamps


def test_concurrent_readers_over_one_file(tmp_path):
    graph = netgen_graph("tiny")
    origins = sample_origins(graph, 20, seed=4)
    path = write_shard(tmp_path, graph, origins)
    expected = {
        o: propagate_compiled(graph, (Seed(asn=o),)) for o in origins
    }
    readers = [ShardReader(path) for _ in range(3)]
    failures: list[str] = []

    def hammer(reader: ShardReader) -> None:
        try:
            for _ in range(5):
                for origin in origins:
                    assert_same_routing(
                        reader.state_for(origin),
                        expected[origin],
                        f"origin={origin}",
                    )
        except AssertionError as exc:  # pragma: no cover
            failures.append(str(exc))

    threads = [
        threading.Thread(target=hammer, args=(r,))
        for r in readers
        for _ in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not failures
    for reader in readers:
        reader.close()


# ---------------------------------------------------------------------------
# rejection paths
# ---------------------------------------------------------------------------


def test_graph_digest_mismatch_rejected(tmp_path):
    graph = netgen_graph("tiny", seed=20200901)
    other = netgen_graph("tiny", seed=7)
    target = precompute_shards(
        graph,
        tmp_path / "out",
        origins=sample_origins(graph, 4, seed=5),
        workers=1,
    )
    with pytest.raises(ShardError, match="precomputed for graph"):
        ShardStore.open(target, graph=other)
    # the reader-level check too
    shard = next(target.glob("*.shard"))
    with pytest.raises(ShardError, match="precomputed for graph"):
        ShardReader(shard, expected_digest=graph_digest(other))
    # and the cache refuses to attach a mismatched store
    with ShardStore.open(target) as store:
        with pytest.raises(ShardError, match="precomputed for graph"):
            RoutingStateCache(other, shards=store)


def test_unsealed_shard_rejected(tmp_path):
    graph = netgen_graph("tiny")
    writer = ShardWriter(tmp_path / "torn.shard", graph)
    for origin, view in propagate_batch(
        graph, tuple(sample_origins(graph, 3, seed=6))
    ).views():
        writer.add(origin, view)
    writer._handle.close()  # crash before close(): header never patched
    with pytest.raises(ShardError, match="unsealed"):
        ShardReader(tmp_path / "torn.shard")


def test_truncated_shard_rejected(tmp_path):
    graph = netgen_graph("tiny")
    path = write_shard(tmp_path, graph, sample_origins(graph, 5, seed=7))
    whole = path.read_bytes()
    path.write_bytes(whole[: len(whole) - 64])  # chop the index tail
    with pytest.raises(ShardError, match="truncated"):
        ShardReader(path)
    path.write_bytes(whole[:40])  # not even a full header
    with pytest.raises(ShardError, match="truncated"):
        ShardReader(path)


def test_corrupted_header_rejected(tmp_path):
    graph = netgen_graph("tiny")
    path = write_shard(tmp_path, graph, sample_origins(graph, 5, seed=8))
    whole = bytearray(path.read_bytes())
    bad_magic = bytearray(whole)
    bad_magic[:8] = b"NOTSHARD"
    path.write_bytes(bytes(bad_magic))
    with pytest.raises(ShardError, match="bad magic"):
        ShardReader(path)
    bad_version = bytearray(whole)
    struct.pack_into("<I", bad_version, 8, 99)
    path.write_bytes(bytes(bad_version))
    with pytest.raises(ShardError, match="version 99"):
        ShardReader(path)


def test_writer_validation(tmp_path):
    graph = netgen_graph("tiny")
    origins = sample_origins(graph, 2, seed=9)
    views = dict(propagate_batch(graph, tuple(origins)).views())
    writer = ShardWriter(tmp_path / "v.shard", graph)
    writer.add(origins[0], views[origins[0]])
    with pytest.raises(ShardError, match="duplicate origin"):
        writer.add(origins[0], views[origins[0]])
    with pytest.raises(ShardError, match="single-origin"):
        writer.add(origins[1], views[origins[0]])
    with pytest.raises(ShardError, match="array-backed"):
        writer.add(origins[1], object())
    writer.close()
    with pytest.raises(ShardError, match="sealed"):
        writer.add(origins[1], views[origins[1]])
    assert ShardReader(tmp_path / "v.shard").origins == (origins[0],)


def test_store_open_failures(tmp_path):
    with pytest.raises(ShardError, match="no manifest.json"):
        ShardStore.open(tmp_path)
    (tmp_path / MANIFEST_NAME).write_text("{not json")
    with pytest.raises(ShardError, match="unreadable manifest"):
        ShardStore.open(tmp_path)
    (tmp_path / MANIFEST_NAME).write_text(json.dumps({"format": "other"}))
    with pytest.raises(ShardError, match="not a shard manifest"):
        ShardStore.open(tmp_path)


# ---------------------------------------------------------------------------
# the cache's disk tier
# ---------------------------------------------------------------------------


@pytest.fixture
def tiny_corpus(tmp_path):
    graph = netgen_graph("tiny")
    target = precompute_shards(graph, tmp_path / "corpus", workers=1)
    store = ShardStore.open(target, graph=graph)
    yield graph, store
    store.close()


def test_state_for_falls_through_to_disk(tiny_corpus):
    graph, store = tiny_corpus
    cache = RoutingStateCache(graph, shards=store)
    origin = sorted(graph.nodes())[0]
    state = cache.state_for(origin)
    live = propagate_compiled(graph, (Seed(asn=origin),))
    assert_states_equal(state, live, "disk tier")
    stats = cache.stats()
    assert (stats.hits, stats.disk_hits, stats.misses) == (0, 1, 0)
    assert stats.tiers == {"lru": 0, "disk": 1, "computed": 0}
    # second read is a warm LRU hit (the disk hit was installed)
    cache.state_for(origin)
    assert cache.stats().tiers == {"lru": 1, "disk": 1, "computed": 0}


def test_prefetch_and_baseline_consult_disk(tiny_corpus):
    graph, store = tiny_corpus
    cache = RoutingStateCache(graph, shards=store)
    origins = sample_origins(graph, 8, seed=10)
    computed = cache.prefetch(origins)
    assert computed == 0  # everything came off the map
    stats = cache.stats()
    assert stats.disk_hits == len(origins) and stats.misses == 0
    # plain-seed baselines ride the same tiers...
    other = sample_origins(graph, 20, seed=11)[-1]
    cache2 = RoutingStateCache(graph, shards=store)
    cache2.baseline_for(Seed(asn=other))
    assert cache2.stats().disk_hits == 1
    # ...but locked/leak baselines are not plain origin states: computed
    cache2.baseline_for(
        Seed(asn=other), peer_locked=frozenset({origins[0]})
    )
    assert cache2.stats().misses == 1


def test_states_for_many_disk_and_stream(tiny_corpus):
    graph, store = tiny_corpus
    every = sorted(graph.nodes())
    cache = RoutingStateCache(graph, shards=store)
    out = dict(cache.states_for_many(every, batch=16, stream=True))
    assert sorted(out) == every
    assert len(cache) == 0  # stream mode never fills the LRU
    stats = cache.stats()
    assert stats.disk_hits == len(every) and stats.misses == 0
    live = propagate_compiled(graph, (Seed(asn=every[3]),))
    assert_states_equal(out[every[3]], live, "streamed disk state")


def test_disk_tier_disabled_while_topology_mutated(tiny_corpus):
    graph, store = tiny_corpus
    cache = RoutingStateCache(graph, shards=store)
    a = sorted(graph.nodes())[0]
    providers = sorted(graph.providers(a)) or sorted(graph.peers(a))
    b = providers[0]
    relationship = "p2c" if b in graph.providers(a) else "p2p"
    graph.remove_edge(b, a)
    cache.invalidate()
    cache.state_for(a)  # digest mismatch: must propagate, not read disk
    assert cache.stats().disk_hits == 0
    assert cache.stats().misses == 1
    # restoring the topology restores the digest — disk tier resumes
    if relationship == "p2c":
        graph.add_p2c(b, a)
    else:
        graph.add_p2p(b, a)
    cache.invalidate()
    cache.state_for(a)
    assert cache.stats().disk_hits == 1


# ---------------------------------------------------------------------------
# streaming memory bound (satellite: O(batch) sweeps)
# ---------------------------------------------------------------------------


def _stream_peak(graph, origins, batch):
    cache = RoutingStateCache(graph)
    tracemalloc.start()
    try:
        for _origin, state in cache.states_for_many(
            origins, batch=batch, stream=True
        ):
            state.path_length(origins[0])  # touch, then drop
        _size, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert len(cache) == 0
    return peak


def test_streaming_sweep_memory_is_o_batch():
    graph = netgen_graph("tiny")
    graph.compile()  # charge one-time compile outside the measurement
    every = sorted(graph.nodes())
    # warm-up pass so interpreter/allocator one-time costs don't count
    _stream_peak(graph, every[:8], batch=8)
    quarter = _stream_peak(graph, every[: len(every) // 4], batch=8)
    full = _stream_peak(graph, every, batch=8)
    # 4x the origins must NOT mean 4x the peak: the window is the bound
    assert full < 2 * quarter, (full, quarter)
    # and streaming must be far below holding the whole sweep
    cache = RoutingStateCache(graph)
    tracemalloc.start()
    try:
        held = dict(cache.states_for_many(every, batch=8))
        _size, hold_all = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert held and full < hold_all / 2, (full, hold_all)


# ---------------------------------------------------------------------------
# resuming a partial corpus
# ---------------------------------------------------------------------------


def test_precompute_resumes_partial_corpus(tmp_path):
    graph = netgen_graph("tiny")
    every = sorted(graph.nodes())
    half = every[: len(every) // 2]
    target = precompute_shards(
        graph, tmp_path / "corpus", origins=half, workers=1, shard_size=16
    )
    manifest = json.loads((target / "manifest.json").read_text())
    base_shards = [s["file"] for s in manifest["shards"]]
    stamps = {f: (target / f).stat().st_mtime_ns for f in base_shards}

    # extending to the full origin set keeps every existing shard file
    # untouched and appends only the missing origins
    again = precompute_shards(
        graph, tmp_path / "corpus", workers=1, shard_size=16
    )
    assert again == target
    merged = json.loads((target / "manifest.json").read_text())
    assert merged["origins"] == len(every)
    merged_files = [s["file"] for s in merged["shards"]]
    assert merged_files[: len(base_shards)] == base_shards
    assert len(merged_files) > len(base_shards)
    for f, stamp in stamps.items():
        assert (target / f).stat().st_mtime_ns == stamp

    # and the merged corpus answers every origin bit-identically
    with ShardStore.open(target, graph=graph) as store:
        assert sorted(store.origins()) == every
        for origin in sample_origins(graph, 8, seed=21):
            live = propagate_compiled(graph, (Seed(asn=origin),))
            assert_states_equal(
                store.state_for(origin), live, f"(resumed origin={origin})"
            )


def test_partial_corpus_streams_mixed_tiers(tmp_path):
    graph = netgen_graph("tiny")
    every = sorted(graph.nodes())
    half = every[: len(every) // 2]
    target = precompute_shards(
        graph, tmp_path / "corpus", origins=half, workers=1
    )
    with ShardStore.open(target, graph=graph) as store:
        cache = RoutingStateCache(graph, shards=store)
        out = dict(cache.states_for_many(every, batch=16, stream=True))
        stats = cache.stats()
        # precomputed origins come off the map, the rest are propagated
        assert stats.disk_hits == len(half)
        assert stats.misses == len(every) - len(half)
        for origin in sample_origins(graph, 8, seed=22):
            live = propagate_compiled(graph, (Seed(asn=origin),))
            assert_states_equal(
                out[origin], live, f"(mixed-tier origin={origin})"
            )


def test_precompute_force_rebuilds_partial(tmp_path):
    graph = netgen_graph("tiny")
    every = sorted(graph.nodes())
    target = precompute_shards(
        graph, tmp_path / "corpus", origins=every[:8], workers=1
    )
    first = json.loads((target / "manifest.json").read_text())["origins"]
    assert first == 8
    precompute_shards(graph, tmp_path / "corpus", workers=1, force=True)
    rebuilt = json.loads((target / "manifest.json").read_text())
    assert rebuilt["origins"] == len(every)


# ---------------------------------------------------------------------------
# corpus discovery, compaction, GC
# ---------------------------------------------------------------------------


def test_open_discovers_renamed_corpus(tmp_path):
    graph = netgen_graph("tiny")
    target = precompute_shards(graph, tmp_path, workers=1)
    renamed = tmp_path / "nightly-2020-09-01"
    target.rename(renamed)
    with ShardStore.open(tmp_path, graph=graph) as store:
        assert store.directory == renamed
        origin = sorted(graph.nodes())[0]
        live = propagate_compiled(graph, (Seed(asn=origin),))
        assert_states_equal(store.state_for(origin), live, "(discovered)")


def test_open_picks_newest_matching_corpus(tmp_path):
    import os as _os
    import shutil as _shutil

    graph = netgen_graph("tiny")
    target = precompute_shards(graph, tmp_path, workers=1)
    older = tmp_path / "older"
    newer = tmp_path / "newer"
    _shutil.copytree(target, older)
    target.rename(newer)
    stale = (newer / MANIFEST_NAME).stat().st_mtime - 3600
    _os.utime(older / MANIFEST_NAME, (stale, stale))
    with ShardStore.open(tmp_path, graph=graph) as store:
        assert store.directory == newer


def test_open_without_matching_corpus_names_digests(tmp_path):
    graph = netgen_graph("tiny")
    other = netgen_graph("tiny", seed=7)
    precompute_shards(other, tmp_path, workers=1)
    with pytest.raises(ShardError) as exc:
        ShardStore.open(tmp_path, graph=graph)
    message = str(exc.value)
    # names both the digest the graph needs and the one that was found
    assert graph_digest(graph)[:16] in message
    assert graph_digest(other)[:16] in message
    assert "repro precompute" in message


def test_compact_merges_rolling_files_bit_identical(tmp_path):
    from repro.bgpsim.shards import precompute_metric_shards

    graph = netgen_graph("tiny")
    target = precompute_shards(graph, tmp_path, shard_size=4, workers=1)
    precompute_metric_shards(graph, tmp_path, shard_size=4)
    with ShardStore.open(target, graph=graph, lease=True) as store:
        assert len(store.manifest["shards"]) > 1
        assert len(store.manifest["metric_shards"]) > 1
        origins = sample_origins(graph, 6, seed=31)
        heg_target = store.metrics.targets[0]
        before = {
            o: (
                store.metrics.reliance(o, sorted(graph.nodes())[-1]),
                store.metrics.hegemony(o, heg_target),
            )
            for o in origins
        }
        stats = store.compact(shard_size=10_000)
        assert stats["merged"]
        assert stats["routing_files_after"] == 1
        assert stats["metric_files_after"] == 1
        assert stats["routing_files_before"] > 1
        # superseded files are gone from disk, not just the manifest
        assert len(list(target.glob("*.shard"))) == 1
        assert len(list(target.glob("*.mshard"))) == 1
        for origin in origins:
            live = propagate_compiled(graph, (Seed(asn=origin),))
            assert_states_equal(
                store.state_for(origin), live, f"(compacted {origin})"
            )
            rel, heg = before[origin]
            got_rel = store.metrics.reliance(
                origin, sorted(graph.nodes())[-1]
            )
            assert float(got_rel).hex() == float(rel).hex()
            got_heg = store.metrics.hegemony(origin, heg_target)
            if heg is None:
                assert got_heg is None
            else:
                assert float(got_heg).hex() == float(heg).hex()


def test_compact_refuses_while_other_store_is_live(tmp_path):
    graph = netgen_graph("tiny")
    target = precompute_shards(graph, tmp_path, shard_size=4, workers=1)
    holder = ShardStore.open(target, graph=graph, lease=True)
    try:
        compactor = ShardStore.open(target, graph=graph, lease=True)
        try:
            with pytest.raises(ShardError, match="live lease"):
                compactor.compact()
        finally:
            compactor.close()
    finally:
        holder.close()
    # once the holder releases its lease the same compaction goes through
    with ShardStore.open(target, graph=graph, lease=True) as store:
        assert store.compact(shard_size=10_000)["merged"]


def test_gc_corpora_keep_remove_refuse(tmp_path):
    from repro.bgpsim.shards import gc_corpora

    g1 = netgen_graph("tiny")
    g2 = netgen_graph("tiny", seed=7)
    c1 = precompute_shards(g1, tmp_path, workers=1)
    c2 = precompute_shards(g2, tmp_path, workers=1)
    holder = ShardStore.open(c2, graph=g2, lease=True)
    try:
        removed, kept, refused = gc_corpora(tmp_path, [graph_digest(g1)])
        assert (removed, kept, refused) == ([], [c1], [c2])
    finally:
        holder.close()
    removed, kept, refused = gc_corpora(tmp_path, [graph_digest(g1)])
    assert (removed, kept, refused) == ([c2], [c1], [])
    assert c1.exists() and not c2.exists()
