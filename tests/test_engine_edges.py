"""Edge-case tests for the propagation engine."""

import pytest

from repro.bgpsim import RouteClass, Seed, propagate
from repro.topology import ASGraph

from .conftest import CLOUD, E2, T2B


def chain(*pairs):
    g = ASGraph()
    for provider, customer in pairs:
        g.add_p2c(provider, customer)
    return g


class TestExportRestrictions:
    def test_empty_export_set_announces_to_nobody(self, mini_graph):
        seed = Seed(asn=CLOUD, export_to=frozenset())
        state = propagate(mini_graph, seed)
        assert state.reachable_ases() == frozenset()
        assert state.route(CLOUD) is not None  # the origin holds its route

    def test_export_set_applies_to_every_first_hop_class(self, mini_graph):
        # export only to one peer: nobody else hears it except through
        # that peer's exports (peer routes are not re-exported to peers)
        seed = Seed(asn=CLOUD, export_to=frozenset({E2}))
        state = propagate(mini_graph, seed)
        assert state.route(E2).route_class is RouteClass.PEER
        assert not state.has_route(T2B)
        assert state.reachable_ases() == {E2}  # E2 has no customers


class TestInitialLengths:
    def test_longer_initial_length_loses_tie_break(self):
        # two seeds announce to a shared provider; the one with the
        # shorter carried path wins selection
        g = chain((10, 1), (10, 2))
        state = propagate(
            g,
            (
                Seed(asn=1, key="short", initial_length=0),
                Seed(asn=2, key="long", initial_length=3),
            ),
        )
        assert state.origins_at(10) == {"short"}
        assert state.route(10).length == 1

    def test_equal_initial_lengths_tie(self):
        g = chain((10, 1), (10, 2))
        state = propagate(
            g,
            (
                Seed(asn=1, key="a", initial_length=2),
                Seed(asn=2, key="b", initial_length=2),
            ),
        )
        assert state.origins_at(10) == {"a", "b"}
        assert state.route(10).length == 3

    def test_seed_entry_never_overwritten_by_other_seed(self):
        # the leak seed keeps exporting its own announcement even when a
        # better legitimate route reaches it
        g = chain((10, 1), (10, 2), (2, 3))
        state = propagate(
            g,
            (
                Seed(asn=1, key="origin", initial_length=0),
                Seed(asn=2, key="leak", initial_length=5),
            ),
        )
        # AS3, customer of the leaker, receives the leaker's announcement
        assert state.origins_at(3) == {"leak"}
        assert state.route(3).length == 6


class TestLockedCorners:
    def test_locked_nonneighbor_is_blackholed(self, mini_graph):
        # strict semantics: a locked AS that is not the origin's neighbor
        # accepts nothing at all for this prefix
        state = propagate(
            mini_graph,
            Seed(asn=CLOUD),
            peer_locked={204},  # E4 is two hops from the cloud
            locked_origin=CLOUD,
        )
        assert not state.has_route(204)

    def test_locked_seed_is_ignored(self, mini_graph):
        # a seed never blocks itself even if listed in the lock set
        state = propagate(
            mini_graph,
            Seed(asn=CLOUD),
            peer_locked={CLOUD},
            locked_origin=CLOUD,
        )
        assert state.reachable_ases()


class TestDeepChains:
    def test_long_provider_chain_lengths(self):
        # 0 <- 1 <- 2 <- ... <- 40 (each next is the customer)
        g = ASGraph()
        for i in range(40):
            g.add_p2c(i + 1, i)
        state = propagate(g, Seed(asn=0))
        for i in range(1, 41):
            assert state.route(i).length == i
            assert state.route(i).route_class is RouteClass.CUSTOMER

    def test_long_customer_chain_lengths(self):
        g = ASGraph()
        for i in range(40):
            g.add_p2c(i, i + 1)
        state = propagate(g, Seed(asn=0))
        for i in range(1, 41):
            assert state.route(i).route_class is RouteClass.PROVIDER
            assert state.route(i).length == i
