"""Unit tests for route-leak resilience simulation (§8)."""

import random

import pytest

from repro.bgpsim import LeakMode, Seed
from repro.core import (
    LEAK_CONFIGURATIONS,
    PeerLockSemantics,
    average_resilience_curve,
    cdf_points,
    configuration_seed_and_locks,
    fraction_at_most,
    resilience_curve,
    simulate_leak,
)

from .conftest import CLOUD, CONTENT, E3, T1B, T2B


class TestSimulateLeak:
    def test_content_leak_detours_hierarchy(self, mini_graph):
        outcome = simulate_leak(mini_graph, CLOUD, CONTENT)
        # AS12 prefers the leaked customer route; AS2's only customer route
        # comes from AS12, so both are detoured (hand-computed).
        assert outcome.detoured == {T2B, T1B}
        assert outcome.total_ases == 10
        assert outcome.fraction_detoured == pytest.approx(2 / 8)

    def test_distant_stub_leak_is_harmless(self, mini_graph):
        outcome = simulate_leak(mini_graph, CLOUD, E3)
        assert outcome.detoured == frozenset()
        assert outcome.fraction_detoured == 0.0

    def test_peer_locking_stops_content_leak(self, mini_graph, mini_tiers):
        seed, locks = configuration_seed_and_locks(
            mini_graph, CLOUD, mini_tiers, "announce_all_t1t2_lock"
        )
        outcome = simulate_leak(mini_graph, seed, CONTENT, peer_locked=locks)
        assert outcome.detoured == frozenset()

    def test_global_lock_virtually_immunizes(self, mini_graph, mini_tiers):
        # Global locking confines the leak's effect to ASes whose only
        # legitimate paths already traverse the leaker (worst-case
        # accounting); it never makes any leak worse.
        seed, locks = configuration_seed_and_locks(
            mini_graph, CLOUD, mini_tiers, "announce_all_global_lock"
        )
        for leaker in mini_graph.nodes():
            if leaker == CLOUD:
                continue
            locked = simulate_leak(mini_graph, seed, leaker, peer_locked=locks)
            unlocked = simulate_leak(mini_graph, CLOUD, leaker)
            if locked is None:
                continue
            assert locked.detoured <= unlocked.detoured

    def test_global_lock_specific_outcomes(self, mini_graph, mini_tiers):
        seed, locks = configuration_seed_and_locks(
            mini_graph, CLOUD, mini_tiers, "announce_all_global_lock"
        )
        # The content AS's leak dies at its locked provider AS12.
        outcome = simulate_leak(mini_graph, seed, CONTENT, peer_locked=locks)
        assert outcome.detoured == frozenset()
        # A stub's leak to its unlocked Tier-1 provider loses on length.
        outcome = simulate_leak(mini_graph, seed, E3, peer_locked=locks)
        assert outcome.detoured == frozenset()

    def test_hijack_mode_needs_no_route(self, mini_graph):
        g = mini_graph.copy()
        g.add_as(999)  # disconnected AS cannot re-announce but can hijack
        assert simulate_leak(g, CLOUD, 999) is None
        outcome = simulate_leak(g, CLOUD, 999, mode=LeakMode.HIJACK)
        assert outcome is not None
        assert outcome.detoured == frozenset()  # no neighbors to leak to

    def test_hijack_detours_more_than_reannounce(self, mini_graph):
        leak = simulate_leak(mini_graph, CLOUD, CONTENT)
        hijack = simulate_leak(mini_graph, CLOUD, CONTENT, mode=LeakMode.HIJACK)
        assert leak.detoured <= hijack.detoured

    def test_invalid_leaker_rejected(self, mini_graph):
        with pytest.raises(ValueError):
            simulate_leak(mini_graph, CLOUD, CLOUD)
        with pytest.raises(ValueError):
            simulate_leak(mini_graph, CLOUD, 8888)

    def test_users_weighting(self, mini_graph):
        outcome = simulate_leak(mini_graph, CLOUD, CONTENT)
        users = {T2B: 50, T1B: 30, E3: 20}
        assert outcome.fraction_users_detoured(users) == pytest.approx(0.8)
        assert outcome.fraction_users_detoured({E3: 7}) == 0.0
        assert outcome.fraction_users_detoured({}) == 0.0

    def test_announce_hierarchy_only_weakens_resilience(self, mini, mini_tiers):
        graph, tiers = mini
        # When the cloud announces only to the hierarchy, its direct peer
        # routes vanish and the content leak captures strictly more ASes.
        seed, _ = configuration_seed_and_locks(
            graph, CLOUD, tiers, "announce_hierarchy_only"
        )
        restricted = simulate_leak(graph, seed, CONTENT)
        baseline = simulate_leak(graph, CLOUD, CONTENT)
        assert baseline.detoured < restricted.detoured


class TestSemanticsAblation:
    def test_erratum_filters_at_least_as_much_as_original(self, mini, mini_tiers):
        graph, tiers = mini
        seed, locks = configuration_seed_and_locks(
            graph, CLOUD, tiers, "announce_all_t1t2_lock"
        )
        for leaker in graph.nodes():
            if leaker == CLOUD:
                continue
            erratum = simulate_leak(
                graph, seed, leaker, peer_locked=locks,
                semantics=PeerLockSemantics.ERRATUM,
            )
            original = simulate_leak(
                graph, seed, leaker, peer_locked=locks,
                semantics=PeerLockSemantics.ORIGINAL,
            )
            if erratum is None or original is None:
                continue
            assert erratum.detoured <= original.detoured


class TestCurves:
    def test_resilience_curve_sorted(self, mini, mini_tiers):
        graph, tiers = mini
        leakers = [a for a in graph.nodes() if a != CLOUD]
        for configuration in LEAK_CONFIGURATIONS:
            curve = resilience_curve(graph, CLOUD, tiers, configuration, leakers)
            assert curve == sorted(curve)
            assert all(0.0 <= x <= 1.0 for x in curve)

    def test_average_resilience_curve(self, mini_graph):
        curve = average_resilience_curve(
            mini_graph, random.Random(7), origins=4, leakers_per_origin=4
        )
        assert curve
        assert all(0.0 <= x <= 1.0 for x in curve)

    def test_cdf_points(self):
        points = cdf_points([0.5, 0.1, 0.1, 1.0])
        assert points[0] == (0.1, 0.25)
        assert points[-1] == (1.0, 1.0)

    def test_fraction_at_most(self):
        assert fraction_at_most([0.0, 0.1, 0.5], 0.2) == pytest.approx(2 / 3)
        assert fraction_at_most([], 0.5) == 0.0

    def test_unknown_configuration_rejected(self, mini, mini_tiers):
        graph, tiers = mini
        with pytest.raises(ValueError):
            configuration_seed_and_locks(graph, CLOUD, tiers, "bogus")
