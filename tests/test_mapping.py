"""Unit tests for IP-to-AS mapping services."""

import ipaddress

import pytest

from repro.mapping import (
    FINAL_ORDER,
    INITIAL_ORDER,
    IpAsnService,
    IterativeResolver,
    PeeringDB,
    WhoisRecord,
    WhoisRegistry,
    cymru_from_scenario,
    peeringdb_from_scenario,
    resolver_from_scenario,
    whois_from_scenario,
)
from repro.mapping.peeringdb import IXLanRecord, NetIXLanRecord
from repro.netgen import build_scenario, tiny


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(tiny())


def net(s: str) -> ipaddress.IPv4Network:
    return ipaddress.IPv4Network(s)


class TestIpAsnService:
    def test_longest_prefix_wins(self):
        svc = IpAsnService([(net("10.0.0.0/8"), 1), (net("10.1.0.0/16"), 2)])
        assert svc.lookup("10.1.2.3") == 2
        assert svc.lookup("10.2.2.3") == 1
        assert svc.lookup("11.0.0.1") is None

    def test_conflicting_announcement_rejected(self):
        svc = IpAsnService([(net("10.0.0.0/8"), 1)])
        with pytest.raises(ValueError):
            svc.announce(net("10.0.0.0/8"), 2)
        svc.announce(net("10.0.0.0/8"), 1)  # idempotent re-announce ok

    def test_withdraw(self):
        svc = IpAsnService([(net("10.0.0.0/8"), 1)])
        svc.withdraw(net("10.0.0.0/8"))
        assert svc.lookup("10.0.0.1") is None
        svc.withdraw(net("10.0.0.0/8"))  # no-op

    def test_scenario_view_resolves_as_prefixes(self, scenario):
        svc = cymru_from_scenario(scenario)
        for asn, prefix in list(scenario.prefixes.items())[:20]:
            assert svc.lookup(prefix[1]) == asn

    def test_scenario_view_honours_announced_flag(self, scenario):
        svc = cymru_from_scenario(scenario)
        for ixp in scenario.ixps:
            expected = ixp.asn if ixp.announced else None
            assert svc.lookup(ixp.lan[2]) == expected


class TestPeeringDB:
    def test_ip_to_asn_exact(self):
        lan = net("193.238.0.0/24")
        pdb = PeeringDB(
            ixlans=[IXLanRecord(0, "Test IX", "lon", lan)],
            netixlans=[NetIXLanRecord(asn=65000, ixp_id=0, ip=lan[5])],
        )
        assert pdb.ip_to_asn(lan[5]) == 65000
        assert pdb.ip_to_asn(lan[6]) is None
        assert pdb.is_ixp_address(lan[6])
        assert not pdb.is_ixp_address("10.0.0.1")

    def test_membership_queries(self, scenario):
        pdb = peeringdb_from_scenario(scenario)
        for ixp in scenario.ixps:
            assert pdb.members_of(ixp.ixp_id) == ixp.members
            for member in ixp.members:
                assert ixp.ixp_id in pdb.exchanges_of(member)
                assert pdb.ip_to_asn(ixp.member_ip(member)) == member

    def test_facility_cities_subset_of_footprint(self, scenario):
        pdb = peeringdb_from_scenario(scenario)
        for name, asn in scenario.clouds.items():
            cities = pdb.facility_cities(asn)
            footprint = {c.code for c in scenario.pop_footprints[name]}
            assert cities <= footprint
            assert cities  # the sampling keeps most facilities


class TestWhois:
    def test_lookup_most_specific(self):
        registry = WhoisRegistry(
            [
                WhoisRecord(net("193.0.0.0/8"), "RIR block", None),
                WhoisRecord(net("193.238.116.0/22"), "NL-IX", 64999),
            ]
        )
        assert registry.lookup("193.238.116.9").org_name == "NL-IX"
        assert registry.lookup_asn("193.1.1.1") is None
        assert registry.lookup("8.8.8.8") is None

    def test_scenario_registry_covers_unannounced_lans(self, scenario):
        registry = whois_from_scenario(scenario)
        for ixp in scenario.ixps:
            record = registry.lookup(ixp.lan[3])
            assert record is not None
            assert record.asn == ixp.asn


class TestResolver:
    def test_order_validation(self, scenario):
        with pytest.raises(ValueError):
            resolver_from_scenario(scenario, order=("dns",))
        with pytest.raises(ValueError):
            resolver_from_scenario(scenario, order=())

    def test_final_order_prefers_peeringdb(self, scenario):
        resolver = resolver_from_scenario(scenario, order=FINAL_ORDER)
        announced = [i for i in scenario.ixps if i.announced and i.members]
        if not announced:
            pytest.skip("no announced populated IXPs in this seed")
        ixp = announced[0]
        member = sorted(ixp.members)[0]
        hit = resolver.resolve(ixp.member_ip(member))
        assert hit.asn == member
        assert hit.source == "peeringdb"

    def test_cymru_first_misattributes_announced_lans(self, scenario):
        resolver = resolver_from_scenario(
            scenario, order=("cymru", "peeringdb", "whois")
        )
        announced = [i for i in scenario.ixps if i.announced and i.members]
        if not announced:
            pytest.skip("no announced populated IXPs in this seed")
        ixp = announced[0]
        member = sorted(ixp.members)[0]
        hit = resolver.resolve(ixp.member_ip(member))
        assert hit.asn == ixp.asn  # the IXP's ASN, not the member's

    def test_initial_order_fails_on_unannounced(self, scenario):
        resolver = resolver_from_scenario(scenario, order=INITIAL_ORDER)
        unannounced = [i for i in scenario.ixps if not i.announced and i.members]
        if not unannounced:
            pytest.skip("no unannounced populated IXPs in this seed")
        ixp = unannounced[0]
        member = sorted(ixp.members)[0]
        assert resolver.resolve(ixp.member_ip(member)) is None

    def test_whois_fallback(self, scenario):
        resolver = resolver_from_scenario(scenario, order=("whois",))
        asn, prefix = next(iter(scenario.prefixes.items()))
        assert resolver.resolve(prefix[9]).source == "whois"
        assert resolver.resolve(prefix[9]).asn == asn
        assert resolver.resolve("203.0.113.5") is None
