"""Unit tests for AS-relationship inference (Gao / AS-Rank-style)."""

import random

import pytest

from repro.collectors import collect_ribs
from repro.inference import (
    clean_paths,
    coverage,
    evaluate_inference,
    infer_asrank,
    infer_clique_from_paths,
    infer_gao,
    observed_adjacencies,
    observed_degree,
    observed_transit_degree,
)
from repro.netgen import build_scenario, tiny
from repro.topology import Relationship


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(tiny())


@pytest.fixture(scope="module")
def paths(scenario):
    dump = collect_ribs(
        scenario.graph, scenario.monitors, scenario.prefixes,
        rng=random.Random(1),
    )
    return dump.paths()


class TestPathHelpers:
    def test_clean_paths_removes_prepending(self):
        assert clean_paths([(1, 1, 2, 2, 3)]) == [(1, 2, 3)]

    def test_clean_paths_drops_loops(self):
        assert clean_paths([(1, 2, 1)]) == []
        assert clean_paths([(1, 2, 3), (4, 5, 4)]) == [(1, 2, 3)]

    def test_observed_degree(self):
        degree = observed_degree([(1, 2, 3), (1, 4)])
        assert degree[1] == 2
        assert degree[2] == 2
        assert degree[4] == 1

    def test_transit_degree_counts_middle_positions(self):
        td = observed_transit_degree([(1, 2, 3), (4, 2, 5)])
        assert td[2] == 4
        assert 1 not in td  # never in the middle

    def test_adjacencies(self):
        edges = observed_adjacencies([(1, 2, 3)])
        assert edges == {frozenset((1, 2)), frozenset((2, 3))}


class TestHandBuiltExample:
    """A tiny hierarchy where both algorithms must get every edge right."""

    # Two Tier-1s (1, 2) peering at the top, three customers each
    # (10-12 / 20-22), stubs 100 and 200, monitors at 100/200/11/21.
    PATHS = [
        (100, 10, 1, 11), (100, 10, 1, 12), (100, 10, 1),
        (100, 10, 1, 2), (100, 10, 1, 2, 20), (100, 10, 1, 2, 21),
        (100, 10, 1, 2, 22), (100, 10, 1, 2, 20, 200),
        (200, 20, 2, 21), (200, 20, 2, 22), (200, 20, 2),
        (200, 20, 2, 1), (200, 20, 2, 1, 10), (200, 20, 2, 1, 11),
        (200, 20, 2, 1, 12), (200, 20, 2, 1, 10, 100),
        (11, 1, 10), (11, 1, 12), (11, 1), (11, 1, 10, 100),
        (11, 1, 2), (11, 1, 2, 20), (11, 1, 2, 21), (11, 1, 2, 22),
        (21, 2, 20), (21, 2, 22), (21, 2), (21, 2, 20, 200),
        (21, 2, 1), (21, 2, 1, 10), (21, 2, 1, 11), (21, 2, 1, 12),
    ] * 2

    def test_gao_recovers_hierarchy(self):
        result = infer_gao(self.PATHS)
        rel = result.relationship_of
        assert rel(1, 2) is Relationship.PEER_PEER
        assert rel(1, 10) is Relationship.PROVIDER_CUSTOMER
        assert rel(10, 100) is Relationship.PROVIDER_CUSTOMER

    def test_asrank_recovers_hierarchy(self):
        result = infer_asrank(self.PATHS)
        graph = result.as_graph()
        assert graph.relationship_between(1, 2) is Relationship.PEER_PEER
        assert 10 in graph.customers(1)
        assert 100 in graph.customers(10)
        assert result.clique == {1, 2}


class TestOnScenario:
    def test_asrank_clique_is_real_tier1s(self, scenario, paths):
        from repro.inference.paths import clean_paths as cp
        from repro.inference.paths import observed_transit_degree as otd

        usable = cp(paths)
        clique = infer_clique_from_paths(usable, otd(usable))
        # every clique member is a genuine transit network (Tier-1/Tier-2/
        # regional), never a stub or an edge AS
        assert clique
        for asn in clique:
            assert not scenario.graph.is_stub(asn), asn
            assert scenario.kind_of(asn).value in (
                "tier1", "tier2", "regional"
            )

    def test_asrank_beats_gao_overall(self, scenario, paths):
        gao_acc = evaluate_inference(scenario.graph, infer_gao(paths).records)
        asrank_acc = evaluate_inference(
            scenario.graph, infer_asrank(paths).records
        )
        assert asrank_acc.accuracy > gao_acc.accuracy
        assert asrank_acc.accuracy > 0.8
        assert asrank_acc.p2c_accuracy > 0.9

    def test_gao_weak_on_peerings_strong_on_transit(self, scenario, paths):
        # Gao's known failure mode (the reason AS-Rank/ProbLink exist):
        # peerings are much harder for it than transit edges
        acc = evaluate_inference(scenario.graph, infer_gao(paths).records)
        assert acc.accuracy > 0.4
        assert acc.p2p_accuracy > 0.3
        assert acc.unknown_edges == 0  # collectors only report real links

    def test_coverage_below_one(self, scenario, paths):
        # BGP collectors cannot see most edge peerings (§4.1), so path
        # coverage of the true edge set is well below 100%
        result = infer_asrank(paths)
        cov = coverage(scenario.graph, result.records)
        assert 0.2 < cov < 0.95

    def test_inferred_graph_is_valid(self, scenario, paths):
        graph = infer_asrank(paths).as_graph()
        graph.validate()
        assert len(graph) > 0


class TestEvaluation:
    def test_accuracy_math(self, scenario):
        truth = scenario.graph
        records = list(truth.records())
        acc = evaluate_inference(truth, records)
        assert acc.accuracy == 1.0
        assert acc.p2c_accuracy == 1.0
        assert acc.p2p_accuracy == 1.0
        assert coverage(truth, records) == 1.0

    def test_reversed_p2c_is_wrong(self, scenario):
        from repro.topology.relationships import RelationshipRecord

        truth = scenario.graph
        record = next(r for r in truth.records() if r.is_transit)
        flipped = RelationshipRecord(
            record.right, record.left, Relationship.PROVIDER_CUSTOMER
        )
        acc = evaluate_inference(truth, [flipped])
        assert acc.accuracy == 0.0
        assert acc.p2c_total == 1

    def test_summary_renders(self, scenario):
        acc = evaluate_inference(scenario.graph, list(scenario.graph.records()))
        assert "overall" in acc.summary()
