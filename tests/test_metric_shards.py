"""Differential harness for the precomputed metric-shard tier.

The contract: every ``/reliance`` and ``/hegemony`` answer served off a
metric shard must be **bit-identical** (``float.hex()``) to the live
kernels — ``reliance_from_state`` and ``local_hegemony`` — and every
query the shards cannot answer (uncovered origin, unknown target, the
NaN diagonal, a mutated topology, a trim mismatch) must fall back to
those kernels instead of failing or drifting.
"""

from __future__ import annotations

import json
import math
import struct

import pytest

from .conftest import netgen_graph, sample_origins
from repro.bgpsim.cache import RoutingStateCache
from repro.bgpsim.shards import (
    MANIFEST_NAME,
    MetricShardReader,
    ShardError,
    ShardStore,
    default_metric_targets,
    graph_digest,
    precompute_metric_shards,
    precompute_shards,
)
from repro.core.hegemony import TRIM, local_hegemony
from repro.core.reliance import reliance_from_state
from repro.serve import QueryService


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A tiny graph with a full routing + metric corpus (small shards,
    so compaction and multi-file stores are exercised)."""
    graph = netgen_graph("tiny")
    root = tmp_path_factory.mktemp("metric-corpus")
    precompute_shards(graph, root, workers=1, shard_size=32)
    precompute_metric_shards(graph, root, shard_size=32)
    store = ShardStore.open(root, graph=graph)
    yield graph, root, store
    store.close()


def hexed(value):
    return float(value).hex()


# ---------------------------------------------------------------------------
# bit-identity against the live kernels
# ---------------------------------------------------------------------------


def test_metric_rows_bit_identical_to_live_kernels(corpus):
    graph, _root, store = corpus
    metrics = store.metrics
    assert metrics is not None
    nodes = sorted(graph.nodes())
    assert sorted(metrics.origins()) == nodes
    assert metrics.targets == default_metric_targets(graph)
    assert metrics.trim == TRIM
    cache = RoutingStateCache(graph)
    for origin in sample_origins(graph, 12, seed=31):
        state = cache.state_for(origin)
        live_mass = reliance_from_state(state)
        for target in nodes:
            got = metrics.reliance(origin, target)
            want = live_mass.get(target, 0.0)
            assert got is not None and hexed(got) == hexed(want), (
                f"reliance({origin}, {target})"
            )
        for target in metrics.targets:
            got = metrics.hegemony(origin, target)
            if target == origin:
                assert got is None  # NaN diagonal: live kernel's call
                continue
            want = local_hegemony(graph, origin, target, cache=cache)
            assert got is not None and hexed(got) == hexed(want), (
                f"hegemony({origin}, {target})"
            )


def test_metric_counts_and_routed_round_trip(corpus):
    graph, _root, store = corpus
    from repro.bgpsim.metrics_kernel import (
        path_counts_indexed,
        routed_count_kernel,
    )

    metrics = store.metrics
    cache = RoutingStateCache(graph)
    for origin in sample_origins(graph, 6, seed=32):
        state = cache.state_for(origin)
        counts = path_counts_indexed(state)
        record = metrics.record_for(origin)
        assert record.counts_exact
        assert [int(c) for c in record.counts] == list(counts)
        by_asn = metrics.path_counts(origin)
        assert all(by_asn[a] >= 1 for a in by_asn)
        assert metrics.routed_count(origin) == routed_count_kernel(state)


def test_metric_store_miss_semantics(corpus):
    graph, _root, store = corpus
    metrics = store.metrics
    nodes = sorted(graph.nodes())
    origin = nodes[0]
    assert metrics.reliance(999_999_999, nodes[1]) is None
    assert metrics.reliance(origin, 999_999_999) is None
    assert metrics.hegemony(origin, 999_999_999) is None
    assert metrics.hegemony(999_999_999, metrics.targets[0]) is None
    # a target outside the precomputed hegemony set misses even when it
    # is a perfectly good node
    uncovered = [n for n in nodes if n not in set(metrics.targets)]
    if uncovered:
        assert metrics.hegemony(origin, uncovered[0]) is None


# ---------------------------------------------------------------------------
# resume / force semantics
# ---------------------------------------------------------------------------


def test_metric_precompute_resumes_untouched(tmp_path):
    graph = netgen_graph("tiny")
    every = sorted(graph.nodes())
    half = every[: len(every) // 2]
    root = tmp_path / "corpus"
    precompute_metric_shards(graph, root, origins=half, shard_size=16)
    target = root / graph_digest(graph)[:16]
    manifest = json.loads((target / MANIFEST_NAME).read_text())
    base = [s["file"] for s in manifest["metric_shards"]]
    stamps = {f: (target / f).stat().st_mtime_ns for f in base}

    precompute_metric_shards(graph, root, shard_size=16)
    merged = json.loads((target / MANIFEST_NAME).read_text())
    files = [s["file"] for s in merged["metric_shards"]]
    assert files[: len(base)] == base and len(files) > len(base)
    assert merged["metric_origins"] == len(every)
    for f, stamp in stamps.items():
        assert (target / f).stat().st_mtime_ns == stamp

    # a second full pass is a no-op
    before = sorted(p.name for p in target.iterdir())
    precompute_metric_shards(graph, root, shard_size=16)
    assert sorted(p.name for p in target.iterdir()) == before

    with ShardStore.open(target, graph=graph) as store:
        cache = RoutingStateCache(graph)
        for origin in sample_origins(graph, 6, seed=33):
            state = cache.state_for(origin)
            live_mass = reliance_from_state(state)
            got = store.metrics.reliance(origin, every[-1])
            assert hexed(got) == hexed(live_mass.get(every[-1], 0.0))


def test_metric_precompute_rides_routing_corpus(tmp_path):
    """With routing shards present, the metric pass streams states off
    the mmap disk tier instead of re-propagating."""
    graph = netgen_graph("tiny")
    root = tmp_path / "corpus"
    precompute_shards(graph, root, workers=1)
    import repro.bgpsim.cache as cache_mod

    calls = []
    original = cache_mod.RoutingStateCache._from_disk

    def spy(self, origin, insert=True):
        state = original(self, origin, insert)
        if state is not None:
            calls.append(origin)
        return state

    cache_mod.RoutingStateCache._from_disk = spy
    try:
        precompute_metric_shards(graph, root)
    finally:
        cache_mod.RoutingStateCache._from_disk = original
    assert len(calls) == len(graph)


def test_metric_target_and_trim_changes_require_force(tmp_path):
    graph = netgen_graph("tiny")
    root = tmp_path / "corpus"
    nodes = sorted(graph.nodes())
    precompute_metric_shards(graph, root, targets=nodes[:4], trim=0.1)
    with pytest.raises(ShardError, match="force"):
        precompute_metric_shards(graph, root, targets=nodes[:6])
    with pytest.raises(ShardError, match="force"):
        precompute_metric_shards(graph, root, trim=0.25)
    # force rebuilds with the new knobs
    precompute_metric_shards(
        graph, root, targets=nodes[:6], trim=0.25, force=True
    )
    with ShardStore.open(root, graph=graph) as store:
        assert store.metrics.targets == tuple(nodes[:6])
        assert store.metrics.trim == 0.25
        cache = RoutingStateCache(graph)
        origin = nodes[-1]
        want = local_hegemony(
            graph, origin, nodes[0], cache=cache, trim=0.25
        )
        assert hexed(store.metrics.hegemony(origin, nodes[0])) == hexed(want)


def test_metric_precompute_rejects_unknown_target(tmp_path):
    graph = netgen_graph("tiny")
    with pytest.raises(ShardError, match="not in graph"):
        precompute_metric_shards(
            graph, tmp_path / "corpus", targets=[999_999_999]
        )


# ---------------------------------------------------------------------------
# rejection paths
# ---------------------------------------------------------------------------


def test_torn_metric_shard_rejected(tmp_path):
    graph = netgen_graph("tiny")
    root = tmp_path / "corpus"
    precompute_metric_shards(graph, root, shard_size=1024)
    target = root / graph_digest(graph)[:16]
    shard = next(target.glob("*.mshard"))
    whole = shard.read_bytes()
    # crash-before-seal: zero the header (index_off back-patch missing)
    shard.write_bytes(b"\x00" * 64 + whole[64:])
    with pytest.raises(ShardError, match="bad magic"):
        MetricShardReader(shard)
    sealedless = bytearray(whole)
    # keep the magic but zero index_off (offset 32 in the header layout)
    struct.pack_into("<Q", sealedless, 32, 0)
    shard.write_bytes(bytes(sealedless))
    with pytest.raises(ShardError, match="unsealed"):
        MetricShardReader(shard)
    shard.write_bytes(whole[: len(whole) - 32])
    with pytest.raises(ShardError, match="truncated"):
        MetricShardReader(shard)
    shard.write_bytes(whole)
    with pytest.raises(ShardError, match="precomputed for graph"):
        MetricShardReader(
            shard, expected_digest=graph_digest(netgen_graph("tiny", seed=7))
        )
    MetricShardReader(shard).close()  # restored bytes read fine again


# ---------------------------------------------------------------------------
# the QueryService metric tier
# ---------------------------------------------------------------------------


def test_service_serves_metrics_bit_identical(corpus):
    graph, _root, store = corpus
    service = QueryService(graph, shards=store)
    assert service.metrics is store.metrics
    nodes = sorted(graph.nodes())
    origin, target = nodes[0], service.metrics.targets[-1]
    if target == origin:
        target = service.metrics.targets[0]
    live_cache = RoutingStateCache(graph)
    live_mass = reliance_from_state(live_cache.state_for(origin))

    status, got = service.answer(
        "/reliance", {"origin": str(origin), "target": str(nodes[-1])}
    )
    assert status == 200
    assert hexed(got["reliance"]) == hexed(live_mass.get(nodes[-1], 0.0))
    status, got = service.answer(
        "/hegemony", {"origin": str(origin), "target": str(target)}
    )
    assert status == 200
    want = local_hegemony(graph, origin, target, cache=live_cache)
    assert hexed(got["hegemony"]) == hexed(want)

    # both answers came off the metric tier: no state was ever built
    assert service.metric_hits == 2 and service.metric_misses == 0
    _status, stats = service.answer("/stats", {})
    assert stats["tiers"] == {
        "lru": 0,
        "metric": 2,
        "disk": 0,
        "computed": 0,
    }
    assert stats["metrics"]["targets"] == len(service.metrics.targets)
    assert stats["latency"]["/reliance"]["count"] == 1


def test_service_zero_reliance_is_a_hit_not_a_fallback(corpus):
    graph, _root, store = corpus
    service = QueryService(graph, shards=store)
    nodes = sorted(graph.nodes())
    origin = nodes[0]
    live_mass = reliance_from_state(RoutingStateCache(graph).state_for(origin))
    zero = next(t for t in nodes if live_mass.get(t, 0.0) == 0.0)
    _status, got = service.answer(
        "/reliance", {"origin": str(origin), "target": str(zero)}
    )
    assert got["reliance"] == 0.0
    assert service.metric_hits == 1 and service.metric_misses == 0


def test_service_falls_back_for_uncovered_queries(tmp_path):
    graph = netgen_graph("tiny")
    every = sorted(graph.nodes())
    half = every[: len(every) // 2]
    root = tmp_path / "corpus"
    precompute_shards(graph, root, workers=1)
    precompute_metric_shards(graph, root, origins=half)
    with ShardStore.open(root, graph=graph) as store:
        service = QueryService(graph, shards=store)
        uncovered = every[-1]
        assert uncovered not in store.metrics
        live_cache = RoutingStateCache(graph)
        live_mass = reliance_from_state(live_cache.state_for(uncovered))
        _s, got = service.answer(
            "/reliance", {"origin": str(uncovered), "target": str(every[0])}
        )
        assert hexed(got["reliance"]) == hexed(live_mass.get(every[0], 0.0))
        assert service.metric_hits == 0 and service.metric_misses == 1
        # the diagonal always falls back to the live definition
        covered = half[0]
        _s, got = service.answer(
            "/hegemony", {"origin": str(covered), "target": str(covered)}
        )
        want = local_hegemony(graph, covered, covered, cache=live_cache)
        if math.isnan(want):
            assert math.isnan(got["hegemony"])
        else:
            assert hexed(got["hegemony"]) == hexed(want)


def test_service_trim_mismatch_bypasses_metric_tier(corpus):
    graph, _root, store = corpus
    service = QueryService(graph, shards=store, trim=0.3)
    origin = sorted(graph.nodes())[0]
    target = next(t for t in store.metrics.targets if t != origin)
    _s, got = service.answer(
        "/hegemony", {"origin": str(origin), "target": str(target)}
    )
    want = local_hegemony(
        graph, origin, target, cache=RoutingStateCache(graph), trim=0.3
    )
    assert hexed(got["hegemony"]) == hexed(want)
    assert service.metric_hits == 0 and service.metric_misses == 1
    assert not service.metric_covers("/hegemony", origin)
    # reliance is trim-independent: still served off the shards
    assert service.metric_covers("/reliance", origin)


def test_service_metric_tier_gated_on_topology_mutation(corpus):
    graph, _root, store = corpus
    service = QueryService(graph, shards=store)
    nodes = sorted(graph.nodes())
    origin = nodes[0]
    target = next(t for t in store.metrics.targets if t != origin)
    query = {"origin": str(origin), "target": str(target)}
    service.answer("/hegemony", query)
    assert service.metric_hits == 1

    a = nodes[0]
    providers = sorted(graph.providers(a)) or sorted(graph.peers(a))
    b = providers[0]
    relationship = "p2c" if b in graph.providers(a) else "p2p"
    graph.remove_edge(b, a)
    service.cache.invalidate()
    _s, mutated = service.answer("/hegemony", query)
    assert service.metric_misses >= 1  # stale digest: kernel answered
    want = local_hegemony(
        graph, origin, target, cache=RoutingStateCache(graph)
    )
    assert hexed(mutated["hegemony"]) == hexed(want)

    # restoring the topology reopens the gate
    if relationship == "p2c":
        graph.add_p2c(b, a)
    else:
        graph.add_p2p(b, a)
    service.cache.invalidate()
    before = service.metric_hits
    service.answer("/hegemony", query)
    assert service.metric_hits == before + 1


def test_service_without_metrics_unchanged(tmp_path):
    graph = netgen_graph("tiny")
    root = tmp_path / "corpus"
    precompute_shards(graph, root, workers=1)  # routing shards only
    with ShardStore.open(root, graph=graph) as store:
        assert store.metrics is None
        service = QueryService(graph, shards=store)
        assert service.metrics is None
        origin = sorted(graph.nodes())[0]
        _s, got = service.answer(
            "/reliance",
            {"origin": str(origin), "target": str(sorted(graph.nodes())[-1])},
        )
        assert "reliance" in got
        assert service.metric_hits == 0 and service.metric_misses == 0
