"""Unit tests for the route-collector simulation and MRT-style I/O."""

import ipaddress
import random

import pytest

from repro.bgpsim import Seed, propagate
from repro.bgpsim.cache import RoutingStateCache
from repro.collectors import (
    CollectorDump,
    MrtFormatError,
    RibEntry,
    collect_ribs,
    dumps_mrt,
    parse_mrt,
    parse_mrt_line,
)
from repro.netgen import build_scenario, tiny


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(tiny())


@pytest.fixture(scope="module")
def dump(scenario):
    return collect_ribs(
        scenario.graph,
        scenario.monitors,
        scenario.prefixes,
        rng=random.Random(1),
    )


class TestRibEntry:
    def test_origin_is_path_tail(self):
        entry = RibEntry(
            peer_asn=10,
            prefix=ipaddress.IPv4Network("16.0.0.0/16"),
            as_path=(10, 20, 30),
        )
        assert entry.origin == 30

    def test_invalid_entries_rejected(self):
        with pytest.raises(ValueError):
            RibEntry(10, ipaddress.IPv4Network("16.0.0.0/16"), ())
        with pytest.raises(ValueError):
            RibEntry(10, ipaddress.IPv4Network("16.0.0.0/16"), (11, 12))


class TestCollection:
    def test_every_monitor_reports_most_origins(self, scenario, dump):
        per_monitor = {}
        for entry in dump.entries:
            per_monitor.setdefault(entry.peer_asn, set()).add(entry.origin)
        assert set(per_monitor) == set(scenario.monitors)
        total = len(scenario.graph)
        for origins in per_monitor.values():
            assert len(origins) >= 0.9 * (total - 1)

    def test_paths_are_tied_best(self, scenario, dump):
        for entry in dump.entries[::97]:
            state = propagate(scenario.graph, Seed(asn=entry.origin))
            assert state.contains_path(entry.as_path)

    def test_prefixes_match_origin(self, scenario, dump):
        for entry in dump.entries[::53]:
            assert entry.prefix == scenario.prefixes[entry.origin]

    def test_cache_is_shared(self, scenario):
        from repro.bgpsim import resolve_stream

        cache = RoutingStateCache(scenario.graph)
        origins = sorted(scenario.graph.nodes())[:5]
        collect_ribs(
            scenario.graph, scenario.monitors, scenario.prefixes,
            origins=origins, cache=cache,
        )
        if resolve_stream(None, len(scenario.graph)):
            # streaming sweeps drop each state after use by design
            assert len(cache) == 0
        else:
            assert len(cache) == len(origins)
        cache.clear()
        assert len(cache) == 0

    def test_restricted_origins(self, scenario):
        origins = sorted(scenario.graph.nodes())[:3]
        small_dump = collect_ribs(
            scenario.graph, scenario.monitors, scenario.prefixes,
            origins=origins, rng=random.Random(2),
        )
        assert small_dump.origins() <= set(origins)


class TestMrtFormat:
    def test_round_trip(self, dump):
        text = dumps_mrt(dump, timestamp=1599000000)
        again = parse_mrt(text)
        assert len(again) == len(dump)
        assert again.paths() == dump.paths()
        assert again.monitors() == dump.monitors()

    def test_parse_line(self):
        entry = parse_mrt_line(
            "TABLE_DUMP2|0|B|0.0.0.0|64500|16.0.0.0/16|64500 64501 64502|IGP"
        )
        assert entry.peer_asn == 64500
        assert entry.as_path == (64500, 64501, 64502)

    def test_parse_rejects_garbage(self):
        with pytest.raises(MrtFormatError):
            parse_mrt_line("nonsense")
        with pytest.raises(MrtFormatError):
            parse_mrt_line("TABLE_DUMP2|0|B|0.0.0.0|x|16.0.0.0/16|1 2|IGP")

    def test_parse_skips_comments_and_blanks(self):
        text = (
            "# collector dump\n\n"
            "TABLE_DUMP2|0|B|0.0.0.0|1|16.0.0.0/16|1 2|IGP\n"
        )
        dump = parse_mrt(text)
        assert len(dump) == 1

    def test_empty_dump(self):
        assert parse_mrt("") .entries == []
        assert dumps_mrt(CollectorDump()) == ""
