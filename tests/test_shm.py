"""Shared-memory payload transport for the parallel sweeps.

Covers the :mod:`repro.bgpsim.shm` layer directly (arena packing,
attach/detach refcounting, cleanup, the ``REPRO_SHM`` knob, the stats
counters, payload wrap/restore round-trips) and differentially: a
parallel propagation sweep must be bit-for-bit identical with the
transport on and off, and workers must actually attach segments rather
than unpickle copies.
"""

from __future__ import annotations

from array import array

import pytest

from .conftest import assert_states_equal, netgen_graph, sample_origins
from repro.bgpsim import Seed, propagate_compiled, propagate_many
from repro.bgpsim import shm
from repro.bgpsim.compiled import CompiledGraph, CompiledRoutingState

pytestmark = pytest.mark.skipif(
    not shm.shm_available(),
    reason="multiprocessing.shared_memory unavailable on this platform",
)


def _graph_and_state(profile_name="tiny", seed=7):
    graph = netgen_graph(profile_name, seed)
    cg = graph.compile()
    origin = sorted(graph.nodes())[0]
    state = propagate_compiled(cg, (Seed(asn=origin),))
    return graph, cg, state


class TestArena:
    def test_pack_and_attach_round_trip(self):
        buffers = {
            "ints": array("i", [1, -2, 3]),
            "longs": array("q", [1 << 40, -5]),
            "raw": bytearray(b"\x00\x01\x02"),
        }
        with shm.ShmArena(buffers) as arena:
            views = arena.ref().attach()
            assert list(views["ints"]) == [1, -2, 3]
            assert list(views["longs"]) == [1 << 40, -5]
            assert bytes(views["raw"]) == b"\x00\x01\x02"
            arena.ref().detach()

    def test_entries_are_8_byte_aligned(self):
        buffers = {"a": bytearray(b"xyz"), "b": array("q", [7])}
        with shm.ShmArena(buffers) as arena:
            offsets = {name: off for name, _, off, _ in arena.entries}
            assert offsets["a"] == 0
            assert offsets["b"] == 8  # aligned past the 3-byte entry
            views = arena.ref().attach()
            assert views["b"][0] == 7
            arena.ref().detach()

    def test_attach_refcounts_and_reuses(self):
        shm.reset_stats()
        with shm.ShmArena({"v": array("i", [5])}) as arena:
            ref = arena.ref()
            first = ref.attach()
            second = ref.attach()
            assert first is second  # served from the per-process cache
            assert shm.stats()["attaches"] == 1
            assert shm.stats()["reuses"] == 1
            ref.detach()
            ref.detach()

    def test_close_is_idempotent_and_unlinks(self):
        arena = shm.ShmArena({"v": array("i", [1, 2])})
        name = arena.name
        arena.close()
        arena.close()  # second close is a no-op
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_stats_count_payload_bytes(self):
        shm.reset_stats()
        with shm.ShmArena({"v": array("q", range(10))}):
            assert shm.stats()["segments"] == 1
            assert shm.stats()["payload_bytes"] >= 80

    def test_ref_is_picklable(self):
        import pickle

        with shm.ShmArena({"v": array("i", [9, 8])}) as arena:
            ref = pickle.loads(pickle.dumps(arena.ref()))
            views = ref.attach()
            assert list(views["v"]) == [9, 8]
            ref.detach()


class TestResolveShm:
    def test_modes(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "off")
        assert shm.resolve_shm() is False
        monkeypatch.setenv("REPRO_SHM", "on")
        assert shm.resolve_shm() is True
        monkeypatch.setenv("REPRO_SHM", "auto")
        assert shm.resolve_shm() is True  # platform probe passed above

    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "on")
        assert shm.resolve_shm("off") is False
        assert shm.resolve_shm(False) is False
        assert shm.resolve_shm(True) is True

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            shm.resolve_shm("sideways")

    def test_on_without_support_raises(self, monkeypatch):
        monkeypatch.setattr(shm, "_available", False)
        with pytest.raises(RuntimeError):
            shm.resolve_shm("on")
        assert shm.resolve_shm("auto") is False  # silent fallback


class TestPayloadRoundTrip:
    def test_graph_round_trip(self):
        _, cg, _ = _graph_and_state()
        arenas: list[shm.ShmArena] = []
        try:
            wrapped = shm.share_payload(cg, arenas)
            assert isinstance(wrapped, shm.SharedGraph)
            restored = shm.restore_payload(wrapped)
            assert isinstance(restored, CompiledGraph)
            assert list(restored.asns) == list(cg.asns)
            assert bytes(memoryview(restored.provider_nbr)) == bytes(
                memoryview(cg.provider_nbr)
            )
            wrapped.ref.detach()
        finally:
            for arena in arenas:
                arena.close()

    def test_state_round_trip_preserves_routes(self):
        graph, _, state = _graph_and_state()
        arenas: list[shm.ShmArena] = []
        try:
            wrapped = shm.share_payload(state, arenas)
            assert isinstance(wrapped, shm.SharedState)
            restored = shm.restore_payload(wrapped)
            assert isinstance(restored, CompiledRoutingState)
            assert_states_equal(state, restored, "(shm round trip)")
            wrapped.ref.detach()
        finally:
            for arena in arenas:
                arena.close()

    def test_dict_payloads_recurse_one_level(self):
        _, cg, state = _graph_and_state()
        arenas: list[shm.ShmArena] = []
        try:
            shared = shm.share_payload(
                {"baseline": state, "engine": "compiled"}, arenas
            )
            assert isinstance(shared["baseline"], shm.SharedState)
            assert shared["engine"] == "compiled"
            restored = shm.restore_payload(shared)
            assert isinstance(restored["baseline"], CompiledRoutingState)
            shared["baseline"].ref.detach()
        finally:
            for arena in arenas:
                arena.close()

    def test_plain_objects_pass_through(self):
        arenas: list[shm.ShmArena] = []
        for obj in (42, "x", [1, 2], None):
            assert shm.share_payload(obj, arenas) is obj
            assert shm.restore_payload(obj) is obj
        assert shm.share_payload({}, arenas) == {}
        assert shm.restore_payload({"k": 1}) == {"k": 1}
        assert arenas == []

    def test_restored_state_pickles_concrete(self):
        # worker results are built over shm-backed views; pickling them
        # back to the parent must not try to pickle memoryviews
        import pickle

        _, _, state = _graph_and_state()
        arenas: list[shm.ShmArena] = []
        try:
            restored = shm.restore_payload(
                shm.share_payload(state, arenas)
            )
            clone = pickle.loads(pickle.dumps(restored))
            assert_states_equal(state, clone, "(pickle of shm state)")
        finally:
            for arena in arenas:
                arena.close()


def _worker_stats_task(graph, item, engine=None):
    del graph, item, engine
    return shm.stats()


class TestParallelTransport:
    def test_sweep_identical_shm_on_and_off(self, monkeypatch):
        graph = netgen_graph("small", 20200901)
        origins = sample_origins(graph, 8, seed=3)

        def sweep():
            return list(
                propagate_many(
                    graph, origins, workers=2, engine="compiled"
                )
            )

        with monkeypatch.context() as ctx:
            ctx.setenv("REPRO_SHM", "off")
            plain = sweep()
        with monkeypatch.context() as ctx:
            ctx.setenv("REPRO_SHM", "on")
            shared = sweep()
        for origin, a, b in zip(origins, plain, shared):
            assert_states_equal(a, b, f"(shm transport, origin {origin})")

    def test_workers_attach_segments(self, monkeypatch):
        from repro.bgpsim.parallel import graph_map

        graph = netgen_graph("tiny", 7)
        monkeypatch.setenv("REPRO_SHM", "on")
        worker_stats = list(
            graph_map(
                graph,
                _worker_stats_task,
                range(2),
                workers=2,
                engine="compiled",
            )
        )
        # each worker mapped at least the graph segment; under ``fork``
        # the other counters are inherited from the parent, so only the
        # attach count is asserted
        assert all(s["attaches"] >= 1 for s in worker_stats)

    def test_no_segments_leak_after_sweep(self, monkeypatch):
        graph = netgen_graph("tiny", 7)
        origins = sample_origins(graph, 4, seed=1)
        monkeypatch.setenv("REPRO_SHM", "on")
        before = set(shm._ARENAS)
        list(
            propagate_many(graph, origins, workers=2, engine="compiled")
        )
        assert set(shm._ARENAS) == before  # every arena closed
