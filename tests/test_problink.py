"""Unit tests for ProbLink-style probabilistic relationship inference."""

import random

import pytest

from repro.collectors import collect_ribs
from repro.inference import (
    LinkFeatures,
    evaluate_inference,
    extract_features,
    infer_asrank,
    infer_gao,
    infer_problink,
)
from repro.inference.paths import clean_paths, observed_transit_degree
from repro.netgen import build_scenario, tiny
from repro.topology import Relationship


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(tiny())


@pytest.fixture(scope="module")
def paths(scenario):
    dump = collect_ribs(
        scenario.graph, scenario.monitors, scenario.prefixes,
        rng=random.Random(1),
    )
    return dump.paths()


@pytest.fixture(scope="module")
def problink_result(paths):
    return infer_problink(paths)


class TestFeatures:
    def test_feature_extraction_covers_all_edges(self, paths):
        usable = clean_paths(paths)
        td = observed_transit_degree(usable)
        features = extract_features(usable, td, customer_edges=set())
        from repro.inference import observed_adjacencies

        assert set(features) == observed_adjacencies(usable)

    def test_feature_tuple_caps_vantage_points(self):
        feature = LinkFeatures(
            vantage_points=99,
            seen_non_apex=True,
            degree_ratio_bucket=1,
            triplet_bucket=2,
        )
        assert feature.as_tuple() == (5, True, 1, 2)

    def test_triplet_feature_reacts_to_customer_edges(self, paths):
        usable = clean_paths(paths)
        td = observed_transit_degree(usable)
        empty = extract_features(usable, td, customer_edges=set())
        assert all(f.triplet_bucket == 0 for f in empty.values())
        # seed with a real customer edge: some links now precede descents
        some_path = next(p for p in usable if len(p) >= 3)
        customer_edge = (some_path[2], some_path[1])
        seeded = extract_features(usable, td, customer_edges={customer_edge})
        assert any(f.triplet_bucket > 0 for f in seeded.values())


class TestInference:
    def test_converges(self, problink_result):
        assert 1 <= problink_result.iterations <= 10

    def test_improves_on_asrank(self, scenario, paths, problink_result):
        asrank_acc = evaluate_inference(
            scenario.graph, infer_asrank(paths).records
        )
        problink_acc = evaluate_inference(
            scenario.graph, problink_result.records
        )
        assert problink_acc.accuracy >= asrank_acc.accuracy
        assert problink_acc.p2p_accuracy > asrank_acc.p2p_accuracy
        assert problink_acc.accuracy > 0.9

    def test_beats_gao_clearly(self, scenario, paths, problink_result):
        gao_acc = evaluate_inference(scenario.graph, infer_gao(paths).records)
        problink_acc = evaluate_inference(
            scenario.graph, problink_result.records
        )
        assert problink_acc.accuracy > gao_acc.accuracy + 0.1

    def test_records_form_valid_graph(self, problink_result):
        graph = problink_result.as_graph()
        graph.validate()
        kinds = {r.relationship for r in problink_result.records}
        assert Relationship.PROVIDER_CUSTOMER in kinds
        assert Relationship.PEER_PEER in kinds

    def test_same_edge_set_as_seed(self, paths, problink_result):
        seed_edges = {
            frozenset((r.left, r.right))
            for r in infer_asrank(paths).records
        }
        problink_edges = {
            frozenset((r.left, r.right)) for r in problink_result.records
        }
        assert problink_edges == seed_edges
