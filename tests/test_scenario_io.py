"""Unit tests for scenario JSON serialization."""

import json

import pytest

from repro.netgen import (
    build_scenario,
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
    tiny,
)


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(tiny(seed=21))


@pytest.fixture(scope="module")
def restored(scenario):
    return scenario_from_dict(scenario_to_dict(scenario))


class TestRoundTrip:
    def test_graph_preserved(self, scenario, restored):
        assert sorted(restored.graph.nodes()) == sorted(scenario.graph.nodes())
        assert set(restored.graph.records()) == set(scenario.graph.records())
        restored.graph.validate()

    def test_public_graph_preserved(self, scenario, restored):
        assert set(restored.public_graph.records()) == set(
            scenario.public_graph.records()
        )

    def test_metadata_preserved(self, scenario, restored):
        assert restored.tiers == scenario.tiers
        assert restored.clouds == scenario.clouds
        assert restored.users == scenario.users
        assert restored.monitors == scenario.monitors
        assert restored.prefixes == scenario.prefixes
        assert restored.transit_labels == scenario.transit_labels
        assert restored.facebook_asn == scenario.facebook_asn

    def test_config_preserved(self, scenario, restored):
        assert restored.config == scenario.config

    def test_ixps_and_interconnects_preserved(self, scenario, restored):
        assert len(restored.ixps) == len(scenario.ixps)
        for before, after in zip(scenario.ixps, restored.ixps):
            assert before == after
        assert set(restored.interconnects) == set(scenario.interconnects)
        for key in scenario.interconnects:
            assert restored.interconnects[key] == scenario.interconnects[key]

    def test_geography_preserved(self, scenario, restored):
        assert restored.pop_footprints == scenario.pop_footprints
        assert restored.vm_cities == scenario.vm_cities
        for asn, info in scenario.as_info.items():
            assert restored.as_info[asn] == info

    def test_restored_scenario_is_usable(self, restored):
        from repro.core import hierarchy_free_reachability

        google = restored.clouds["Google"]
        value = hierarchy_free_reachability(
            restored.graph, google, restored.tiers
        )
        assert value > 0


class TestFiles:
    def test_plain_json_file(self, scenario, tmp_path):
        path = tmp_path / "scenario.json"
        save_scenario(scenario, path)
        loaded = load_scenario(path)
        assert loaded.summary() == scenario.summary()
        json.loads(path.read_text())  # valid JSON on disk

    def test_gzip_file(self, scenario, tmp_path):
        plain = tmp_path / "scenario.json"
        packed = tmp_path / "scenario.json.gz"
        save_scenario(scenario, plain)
        save_scenario(scenario, packed)
        assert packed.stat().st_size < plain.stat().st_size
        assert load_scenario(packed).summary() == scenario.summary()

    def test_version_check(self, scenario):
        data = scenario_to_dict(scenario)
        data["format_version"] = 999
        with pytest.raises(ValueError, match="version"):
            scenario_from_dict(data)
