"""Unit tests for neighbor inference and validation (§4.1, §5)."""

import pytest

from repro.netgen import build_scenario, tiny
from repro.neighbors import (
    FINAL_STAGE,
    STAGES,
    build_resolver,
    infer_all_clouds,
    infer_from_traceroutes,
    stage_by_name,
    validate_all,
    validate_neighbors,
)
from repro.topology import augment_with_neighbors
from repro.traceroute import TracerouteCampaign


@pytest.fixture(scope="module")
def pipeline():
    scenario = build_scenario(tiny())
    campaign = TracerouteCampaign(scenario, seed=2)
    traces = campaign.run_all()
    return scenario, traces


class TestStages:
    def test_stage_lookup(self):
        assert stage_by_name("V0").skip_one_unknown
        assert not stage_by_name("V4").skip_one_unknown
        with pytest.raises(KeyError):
            stage_by_name("V9")

    def test_final_stage_order(self):
        assert FINAL_STAGE.resolution_order == ("peeringdb", "cymru", "whois")
        assert FINAL_STAGE.vm_limit is None

    def test_resolver_order_must_match_stage(self, pipeline):
        scenario, traces = pipeline
        cloud = scenario.clouds["Google"]
        wrong = build_resolver(scenario, stage_by_name("V0"))
        with pytest.raises(ValueError):
            infer_from_traceroutes(cloud, traces[cloud], wrong, FINAL_STAGE)


class TestInference:
    def test_final_stage_is_accurate(self, pipeline):
        scenario, traces = pipeline
        inferred = infer_all_clouds(scenario, traces, FINAL_STAGE)
        truth = {c: scenario.true_cloud_neighbors(c) for c in inferred}
        reports = validate_all(
            {c: inf.neighbors for c, inf in inferred.items()}, truth
        )
        for report in reports.values():
            assert report.fdr < 0.2
            assert report.fnr < 0.3

    def test_initial_stage_is_noisy(self, pipeline):
        scenario, traces = pipeline
        v0 = infer_all_clouds(scenario, traces, stage_by_name("V0"))
        v4 = infer_all_clouds(scenario, traces, FINAL_STAGE)
        truth = {c: scenario.true_cloud_neighbors(c) for c in v0}
        r0 = validate_all({c: i.neighbors for c, i in v0.items()}, truth)
        r4 = validate_all({c: i.neighbors for c, i in v4.items()}, truth)
        mean_fdr0 = sum(r.fdr for r in r0.values()) / len(r0)
        mean_fdr4 = sum(r.fdr for r in r4.values()) / len(r4)
        assert mean_fdr0 > 0.3  # the paper's ~50% initial FDR
        assert mean_fdr4 < mean_fdr0 / 2

    def test_evidence_counts_match_used(self, pipeline):
        scenario, traces = pipeline
        cloud = scenario.clouds["Google"]
        resolver = build_resolver(scenario, FINAL_STAGE)
        result = infer_from_traceroutes(
            cloud, traces[cloud], resolver, FINAL_STAGE
        )
        assert sum(result.evidence.values()) == result.used
        assert set(result.evidence) == result.neighbors
        assert result.discarded >= 0

    def test_inference_beats_bgp_view(self, pipeline):
        # The whole point of §4.1: traceroutes uncover far more neighbors
        # than BGP feeds see.
        scenario, traces = pipeline
        inferred = infer_all_clouds(scenario, traces, FINAL_STAGE)
        for cloud, result in inferred.items():
            visible = scenario.visible_cloud_neighbors(cloud)
            truth = scenario.true_cloud_neighbors(cloud)
            found_real = len(result.neighbors & truth)
            assert found_real > len(visible & truth)

    def test_augmentation_with_inferred_neighbors(self, pipeline):
        scenario, traces = pipeline
        inferred = infer_all_clouds(scenario, traces, FINAL_STAGE)
        augmented = scenario.public_graph.copy()
        report = augment_with_neighbors(
            augmented, {c: i.neighbors for c, i in inferred.items()}
        )
        for cloud in scenario.cloud_asns():
            assert augmented.degree(cloud) >= scenario.public_graph.degree(cloud)
            assert report.added_count(cloud) > 0


class TestValidationMath:
    def test_confusion_counts(self):
        report = validate_neighbors(1, {2, 3, 4}, {3, 4, 5, 6})
        assert report.true_positives == 2
        assert report.false_positives == 1
        assert report.false_negatives == 2
        assert report.fdr == pytest.approx(1 / 3)
        assert report.fnr == pytest.approx(1 / 2)
        assert report.precision == pytest.approx(2 / 3)
        assert report.recall == pytest.approx(1 / 2)

    def test_empty_sets(self):
        report = validate_neighbors(1, set(), set())
        assert report.fdr == 0.0
        assert report.fnr == 0.0

    def test_as_row_keys(self):
        row = validate_neighbors(7, {1}, {1}).as_row()
        assert row["cloud_asn"] == 7
        assert row["fdr"] == 0.0
        assert row["inferred"] == row["truth"] == 1
