"""Unit tests for the traceroute simulator."""

import random

import pytest

from repro.bgpsim import Seed, propagate
from repro.netgen import ArtifactRates, ScenarioConfig, build_scenario, tiny
from repro.traceroute import (
    ArtifactModel,
    TracerouteCampaign,
    expand_path,
    nearest_interconnect,
    vantage_points,
)


def quiet_config(seed: int = 7) -> ScenarioConfig:
    """Tiny profile with all measurement noise disabled."""
    from dataclasses import replace

    return replace(
        tiny(seed),
        artifacts=ArtifactRates(
            unresponsive_hop=0.0,
            unresponsive_border=0.0,
            ixp_unannounced=0.5,
            ixp_misattribution=0.0,
            rate_limited=0.0,
            tunnel_suppression=0.0,
            policy_deviation=0.0,
            route_server_fraction=0.0,
        ),
    )


@pytest.fixture(scope="module")
def quiet():
    return build_scenario(quiet_config())


@pytest.fixture(scope="module")
def noisy():
    return build_scenario(tiny())


class TestVantagePoints:
    def test_one_vm_per_datacenter_city(self, quiet):
        for asn in quiet.cloud_asns():
            vms = vantage_points(quiet, asn)
            assert len(vms) == len(quiet.vm_cities[asn])
            assert len({vm.label for vm in vms}) == len(vms)


class TestExpandPath:
    def test_clean_path_structure(self, quiet):
        campaign = TracerouteCampaign(quiet, seed=1)
        cloud = quiet.clouds["Google"]
        vm = vantage_points(quiet, cloud)[0]
        neighbor = sorted(quiet.graph.neighbors(cloud))[0]
        trace = campaign.measure(vm, neighbor, wan_egress=True)
        assert trace.reached
        assert trace.true_as_path[0] == cloud
        assert trace.true_as_path[-1] == neighbor
        # all hops respond with noise off
        assert all(h.responded for h in trace.hops)
        # last hop is the destination address
        assert trace.hops[-1].ip == trace.dst_ip

    def test_cloud_interior_uses_cloud_prefix(self, quiet):
        campaign = TracerouteCampaign(quiet, seed=1)
        cloud = quiet.clouds["IBM"]
        vm = vantage_points(quiet, cloud)[0]
        dst = sorted(
            a for a in quiet.graph if a not in quiet.cloud_asns()
        )[0]
        trace = campaign.measure(vm, dst, wan_egress=True)
        prefix = quiet.prefixes[cloud]
        assert trace.hops[0].ip in prefix
        assert trace.hops[1].ip in prefix
        assert trace.hops[2].ip not in prefix  # the border

    def test_border_hop_matches_interconnect(self, quiet):
        campaign = TracerouteCampaign(quiet, seed=3)
        cloud = quiet.clouds["Microsoft"]
        vm = vantage_points(quiet, cloud)[0]
        for dst in sorted(quiet.graph.neighbors(cloud))[:5]:
            trace = campaign.measure(vm, dst, wan_egress=True)
            if trace.true_as_path[1] != dst:
                continue
            link = nearest_interconnect(quiet, cloud, dst, vm)
            assert trace.hops[2].ip == link.neighbor_ip

    def test_invalid_paths_rejected(self, quiet):
        campaign = TracerouteCampaign(quiet, seed=1)
        cloud = quiet.clouds["Google"]
        vm = vantage_points(quiet, cloud)[0]
        with pytest.raises(ValueError):
            expand_path(quiet, campaign.artifacts, random.Random(0), vm, (cloud,))
        with pytest.raises(ValueError):
            expand_path(
                quiet, campaign.artifacts, random.Random(0), vm, (1, 2)
            )


class TestForwardingPaths:
    def test_paths_are_tied_best(self, quiet):
        campaign = TracerouteCampaign(quiet, seed=5)
        cloud = quiet.clouds["Google"]
        vm = vantage_points(quiet, cloud)[0]
        for dst in sorted(quiet.graph.nodes())[::7]:
            if dst == cloud:
                continue
            path = campaign.forwarding_path(vm, dst, wan_egress=True)
            if path is None:
                continue
            state = propagate(quiet.graph, Seed(asn=dst))
            assert state.contains_path(path)

    def test_self_destination_skipped(self, quiet):
        campaign = TracerouteCampaign(quiet, seed=5)
        cloud = quiet.clouds["Google"]
        vm = vantage_points(quiet, cloud)[0]
        assert campaign.forwarding_path(vm, cloud, wan_egress=True) is None

    def test_early_exit_is_deterministic_per_vm(self, quiet):
        campaign = TracerouteCampaign(quiet, seed=5)
        cloud = quiet.clouds["Amazon"]
        vms = vantage_points(quiet, cloud)
        dst = sorted(
            a for a in quiet.graph if a not in quiet.cloud_asns()
        )[10]
        first = campaign.forwarding_path(vms[0], dst, wan_egress=False)
        again = campaign.forwarding_path(vms[0], dst, wan_egress=False)
        assert first[1] == again[1]  # same VM → same exit


class TestCampaign:
    def test_run_cloud_counts(self, quiet):
        campaign = TracerouteCampaign(quiet, seed=2)
        cloud = quiet.clouds["IBM"]
        destinations = sorted(quiet.graph.nodes())[:10]
        traces = campaign.run_cloud(cloud, destinations=destinations)
        vms = len(vantage_points(quiet, cloud))
        expected_dsts = len([d for d in destinations if d != cloud])
        assert len(traces) == vms * expected_dsts

    def test_noise_produces_unresponsive_hops(self, noisy):
        campaign = TracerouteCampaign(noisy, seed=2)
        traces = campaign.run_cloud(noisy.clouds["Google"])
        assert any(
            not hop.responded for trace in traces for hop in trace.hops
        )
        assert any(not t.reached for t in traces)  # rate limiting

    def test_trace_string_rendering(self, quiet):
        campaign = TracerouteCampaign(quiet, seed=1)
        cloud = quiet.clouds["Google"]
        vm = vantage_points(quiet, cloud)[0]
        dst = sorted(quiet.graph.neighbors(cloud))[0]
        text = str(campaign.measure(vm, dst, wan_egress=True))
        assert "traceroute from" in text
        assert str(vm.cloud_asn) in text


class TestCompactStateRegression:
    """The walk must stay on the lazy per-AS accessor (satellite fix).

    ``forwarding_path`` used to index ``state.routes[node]``, forcing
    every compiled state to materialize its full routes dict and
    defeating the compact cache.
    """

    def test_run_cloud_never_materializes_compiled_states(self, quiet):
        from repro.bgpsim import CompiledRoutingState

        campaign = TracerouteCampaign(quiet, seed=2, engine="compiled")
        cloud = quiet.clouds["Google"]
        destinations = sorted(quiet.graph.nodes())[:12]
        traces = campaign.run_cloud(cloud, destinations=destinations)
        assert traces
        states = list(campaign._states._states.values())
        assert states
        for state in states:
            assert isinstance(state, CompiledRoutingState)
            assert state._materialized is None


class TestExitDistanceMemo:
    """Exit distances depend only on (cloud, neighbor, VM city) — they
    are computed once per key, not once per destination (satellite fix).
    """

    def test_memo_populated_and_stable(self, quiet):
        campaign = TracerouteCampaign(quiet, seed=5)
        cloud = quiet.clouds["Amazon"]  # early-exit: hits exit_distance
        vm = vantage_points(quiet, cloud)[0]
        destinations = [
            a for a in sorted(quiet.graph.nodes())[:20]
            if a not in quiet.cloud_asns()
        ]
        for dst in destinations:
            campaign.forwarding_path(vm, dst, wan_egress=False)
        memo = campaign._exit_km
        assert memo  # the min-haversine results were cached
        assert all(key[0] == cloud for key in memo)
        assert all(key[2] == vm.city.code for key in memo)
        # a second sweep over the same destinations adds no new keys
        before = dict(memo)
        for dst in destinations:
            campaign.forwarding_path(vm, dst, wan_egress=False)
        assert campaign._exit_km == before

    def test_memoized_choice_unchanged(self, quiet):
        """Same forwarding decisions with a cold and a warm memo."""
        cloud = quiet.clouds["Amazon"]
        dst = sorted(
            a for a in quiet.graph if a not in quiet.cloud_asns()
        )[10]
        cold = TracerouteCampaign(quiet, seed=5)
        warm = TracerouteCampaign(quiet, seed=5)
        vm = vantage_points(quiet, cloud)[0]
        warm.forwarding_path(vm, dst, wan_egress=False)  # prime the memo
        warm.rng = __import__("random").Random(5)
        cold_path = cold.forwarding_path(vm, dst, wan_egress=False)
        warm_path = warm.forwarding_path(vm, dst, wan_egress=False)
        assert cold_path == warm_path
