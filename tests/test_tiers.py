"""Unit tests for tier identification."""

import pytest

from repro.topology import (
    ASGraph,
    TierAssignment,
    TierListBuilder,
    infer_tier1_clique,
    infer_tier2,
    infer_tiers,
)

from .conftest import T1A, T1B, T2A, T2B, build_mini


class TestTierAssignment:
    def test_hierarchy_union(self):
        tiers = TierAssignment(frozenset({1, 2}), frozenset({3}))
        assert tiers.hierarchy == {1, 2, 3}

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            TierAssignment(frozenset({1}), frozenset({1, 2}))


class TestInference:
    def test_mini_clique(self):
        graph, _ = build_mini()
        clique = infer_tier1_clique(graph)
        assert clique == {T1A, T1B}

    def test_mini_tier2(self):
        graph, _ = build_mini()
        tier1 = frozenset({T1A, T1B})
        tier2 = infer_tier2(graph, tier1, count=5, min_tier1_adjacency=1)
        assert T2A in tier2
        assert T2B in tier2
        assert T1A not in tier2

    def test_infer_tiers_end_to_end(self):
        graph, expected = build_mini()
        tiers = infer_tiers(graph, tier2_count=2, min_tier1_adjacency=1)
        assert tiers.tier1 == expected.tier1
        assert tiers.tier2 == expected.tier2

    def test_clique_requires_mutual_peering(self):
        g = ASGraph()
        # three provider-free ASes, but only 1-2 peer
        g.add_p2p(1, 2)
        g.add_as(3)
        g.add_p2c(1, 10)
        g.add_p2c(2, 11)
        g.add_p2c(3, 12)
        g.add_p2c(3, 13)
        clique = infer_tier1_clique(g)
        # AS3 has the highest transit degree and seeds the clique; AS1/AS2
        # do not peer with it and are left out.
        assert clique == {3}

    def test_stub_never_tier2(self):
        graph, _ = build_mini()
        tier2 = infer_tier2(
            graph, frozenset({T1A, T1B}), count=10, min_tier1_adjacency=0
        )
        assert 203 not in tier2
        assert 301 not in tier2


class TestBuilder:
    def test_builder_resolves_conflicts(self):
        tiers = (
            TierListBuilder()
            .add_tier2(5, 6)
            .add_tier1(1, 5)
            .add_tier2(1)
            .build()
        )
        assert tiers.tier1 == {1, 5}
        assert tiers.tier2 == {6}
