"""Structural validator + the paper-scale ``full`` profile.

The seed ``mid``/``large`` profiles calibrate one tolerance band
(degree, assortativity, clustering, joint-degree); the ~70k-AS ``full``
profile must pass the *same* band.  Generating ``full`` takes ~40 s on
one core, so its end-to-end test is opt-in via ``REPRO_FULL_PROFILE=1``
(CI's 1-CPU runner skips it); everything the cheap tests can pin —
config arithmetic, the /20 addressing extension tier, wide IXP LANs,
the adaptive synthetic-ASN blocks — runs unconditionally.
"""

from __future__ import annotations

import ipaddress
import os

import pytest

from repro.netgen import build_scenario, profile, validate_scenario
from repro.netgen.addressing import (
    AS_PREFIX_EXT_BASE,
    IXP_LAN_WIDE_BASE,
    MAX_AS_PREFIXES,
    MAX_AS_PREFIXES_EXT,
    as_prefix,
    ixp_lan,
)
from repro.netgen.validate import (
    average_clustering,
    degree_assortativity,
    edge_count,
    neighbor_degree_correlation,
)
from repro.topology import ASGraph


def _star(leaves: int) -> ASGraph:
    graph = ASGraph()
    for leaf in range(1, leaves + 1):
        graph.add_p2c(1000, leaf)
    return graph


def _triangle() -> ASGraph:
    graph = ASGraph()
    graph.add_p2p(1, 2)
    graph.add_p2p(2, 3)
    graph.add_p2p(1, 3)
    return graph


class TestMetricKernels:
    def test_star_is_maximally_disassortative(self):
        assert degree_assortativity(_star(10)) == pytest.approx(-1.0)

    def test_clique_is_degree_uncorrelated(self):
        # all degrees equal -> zero variance -> defined as 0
        assert degree_assortativity(_triangle()) == 0.0

    def test_triangle_clustering_is_one(self):
        assert average_clustering(_triangle()) == pytest.approx(1.0)

    def test_star_clustering_is_zero(self):
        assert average_clustering(_star(10)) == 0.0

    def test_star_neighbor_degree_anticorrelated(self):
        assert neighbor_degree_correlation(_star(10)) == pytest.approx(-1.0)

    def test_edge_count(self):
        assert edge_count(_triangle()) == 3
        assert edge_count(_star(7)) == 7

    def test_clustering_sampling_is_deterministic(self):
        graph = _triangle()
        assert average_clustering(graph, sample=2) == average_clustering(
            graph, sample=2
        )


class TestSeedProfilesPass:
    @pytest.mark.parametrize("name", ["mid", "large"])
    def test_profile_in_band(self, name):
        report = validate_scenario(build_scenario(profile(name)))
        assert report.ok, report.violations
        assert report.profile == name
        assert report.n_ases == pytest.approx(
            profile(name).total_ases, rel=0.02
        )

    def test_report_dict_roundtrip(self):
        report = validate_scenario(build_scenario(profile("mid")))
        data = report.as_dict()
        assert data["violations"] == []
        assert data["n_ases"] == report.n_ases

    def test_wrong_expectation_is_flagged(self):
        report = validate_scenario(
            build_scenario(profile("mid")), expected_ases=10
        )
        assert not report.ok
        assert any("expected 10" in v for v in report.violations)


class TestFullProfileConfig:
    def test_full_counts(self):
        cfg = profile("full")
        # the paper simulates the ~70k-AS Sep-2020 Internet
        assert cfg.total_ases == 69_999
        assert (cfg.n_tier1, cfg.n_tier2) == (16, 21)

    def test_full2015_companion(self):
        from repro.netgen import COMPANION_2015

        assert COMPANION_2015["full"] == "full2015"
        # paper's Sep-2015 snapshot: 51,801 ASes
        assert profile("full2015").total_ases == pytest.approx(
            51_801, rel=0.01
        )


class TestAddressingExtensionTier:
    def test_legacy_slash16s_unchanged(self):
        assert as_prefix(0) == ipaddress.IPv4Network("16.0.0.0/16")
        assert as_prefix(MAX_AS_PREFIXES - 1) == ipaddress.IPv4Network(
            "79.255.0.0/16"
        )

    def test_extension_tier_starts_where_slash16s_end(self):
        first_ext = as_prefix(MAX_AS_PREFIXES)
        assert first_ext == ipaddress.IPv4Network("80.0.0.0/20")
        assert int(first_ext.network_address) == AS_PREFIX_EXT_BASE

    def test_tiers_disjoint_and_ordered(self):
        assert as_prefix(MAX_AS_PREFIXES - 1).broadcast_address < (
            as_prefix(MAX_AS_PREFIXES).network_address
        )
        assert not as_prefix(MAX_AS_PREFIXES).overlaps(
            as_prefix(MAX_AS_PREFIXES + 1)
        )

    def test_full_profile_fits(self):
        index = profile("full").total_ases - 1
        prefix = as_prefix(index)
        assert prefix.prefixlen == 20

    def test_out_of_range_still_raises(self):
        with pytest.raises(ValueError):
            as_prefix(MAX_AS_PREFIXES + MAX_AS_PREFIXES_EXT)
        with pytest.raises(ValueError):
            as_prefix(10**6)

    def test_wide_ixp_lans(self):
        assert ixp_lan(0) == ipaddress.IPv4Network("193.238.0.0/24")
        wide = ixp_lan(0, wide=True)
        assert wide.prefixlen == 18
        assert int(wide.network_address) == IXP_LAN_WIDE_BASE
        # wide LANs live below the AS-prefix space entirely
        assert ixp_lan(255, wide=True).broadcast_address < (
            as_prefix(0).network_address
        )
        with pytest.raises(ValueError):
            ixp_lan(256, wide=True)


class TestAdaptiveAsnBlocks:
    def test_seed_profiles_keep_legacy_blocks(self):
        from repro.netgen.scenario import ASKind

        scenario = build_scenario(profile("tiny"))
        regionals = scenario.ases_of_kind(ASKind.REGIONAL)
        assert any(20_000 <= asn < 30_000 for asn in regionals)

    def test_wide_blocks_clear_reserved_pools(self):
        from repro.netgen.generator import (
            LEGACY_BLOCK_BASES,
            WIDE_BLOCK_BASES,
        )

        assert LEGACY_BLOCK_BASES == (20_000, 30_000, 40_000, 50_000)
        # the wide bases must dodge the 60000+ synth pool, the 61000+
        # IXP ASNs, and every curated real ASN (all < 65536), and be
        # spaced so no class can run into the next
        bases = WIDE_BLOCK_BASES
        assert all(base > 65_536 for base in bases)
        full = profile("full")
        counts = dict(
            zip(
                bases,
                (
                    full.n_regional,
                    full.n_access,
                    full.n_content,
                    full.n_enterprise,
                ),
            )
        )
        spans = sorted((b, b + counts[b]) for b in bases)
        for (_, end), (nxt, _) in zip(spans, spans[1:]):
            assert end <= nxt


@pytest.mark.slow
@pytest.mark.skipif(
    os.environ.get("REPRO_FULL_PROFILE") != "1",
    reason="~40s single-core generation; set REPRO_FULL_PROFILE=1",
)
class TestFullProfileGeneration:
    def test_full_generates_and_validates(self):
        scenario = build_scenario(profile("full"))
        assert len(scenario.graph) == 69_999
        report = validate_scenario(scenario)
        assert report.ok, report.violations
        # paper-scale synthetic ASNs land in the wide blocks, clear of
        # every real curated ASN
        synth = [
            asn
            for asn, info in scenario.as_info.items()
            if info.name.split("-")[0]
            in {"Regional", "Access", "Content", "Enterprise"}
        ]
        assert synth and all(asn >= 100_000 for asn in synth)
