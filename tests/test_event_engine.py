"""Differential event-conformance harness: event deltas ≡ full recompute.

The dynamic-topology engine (``repro.bgpsim.events``) derives each
post-event routing state from a cached baseline instead of recomputing
the mutated graph from scratch.  It is only safe to use if every outcome
is *identical* to the full recompute, so this module proves, for every
event type (``LinkDown``, ``LinkUp``, ``Depeer``, ``ASFailure``,
``ASRecover``, ``Hijack``, ``RouteLeak``) on 3 netgen seeds × 2 sizes:

* **state level** — the delta state equals ``propagate_compiled`` on the
  mutated graph (full tied-best equivalence class: route class, length,
  parent sets, origins);
* **metric level** — the PR-4 metric kernels produce bit-identical
  floats on the delta state and on the full recompute;
* **regression level** — hand-computed minimal graphs where a
  ``LinkDown`` severing a provider must withdraw exactly the
  customer-cone routes that transited it (and re-converge the survivors
  through peers), including both sides of the fallback-threshold
  boundary;
* **timeline level** — ``ScenarioRunner`` emits identical metric rows on
  every engine and worker count, and drops cached baselines on every
  topology-mutating event (``baseline_invalidations``).

Hijacks are checked against an *independent* reference — a test-side
merge of two full propagations — rather than the engine's own merge.
Set ``REPRO_TEST_WORKERS`` to change the parallel worker count (CI runs
the harness at 2).
"""

from __future__ import annotations

import os
import random

import pytest

from .conftest import (
    assert_states_equal,
    build_mini,
    netgen_graph,
    sample_origins,
)
from repro.bgpsim import (
    ASFailure,
    ASRecover,
    Depeer,
    Hijack,
    LinkDown,
    LinkUp,
    RouteLeak,
    RoutingStateCache,
    Seed,
    cross_fractions_kernel,
    full_event_outcome,
    length_histogram_kernel,
    propagate_compiled,
    propagate_delta_event,
    reliance_kernel,
    routed_count_kernel,
)
from repro.experiments.timeline import ScenarioRunner, parse_events
from repro.topology import ASGraph

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "4"))

#: (profile, scenario seed) — ≥3 seeds × 2 sizes, per the acceptance bar.
SCENARIOS = [
    ("tiny", 20200901),
    ("tiny", 7),
    ("tiny", 8),
    ("small", 20200901),
    ("small", 7),
    ("small", 8),
]


def _check_topology_event(graph, origins, event, context):
    """Apply ``event``; assert delta ≡ full recompute for every origin.

    ``threshold=1.0`` forces the frontier-limited pass (no silent
    fallbacks); the graph is left in its post-event form.  Returns the
    outcomes so callers can inspect instrumentation.
    """
    baselines = {
        origin: propagate_compiled(graph, Seed(asn=origin))
        for origin in origins
    }
    applied = event.apply(graph)
    outcomes = {}
    for origin, baseline in baselines.items():
        out = propagate_delta_event(graph, baseline, applied, threshold=1.0)
        assert not out.fallback, f"unexpected fallback: {out.reason}"
        full = propagate_compiled(graph, baseline.seeds)
        assert_states_equal(
            out.state, full, f"{context}, {event.describe()}, AS{origin}"
        )
        outcomes[origin] = (out, full)
    return applied, outcomes


def _assert_metrics_identical(state_a, state_b, targets, context):
    """The metric kernels must produce bit-identical floats (``==`` on
    dicts, no tolerance) on the delta state and the full recompute."""
    assert routed_count_kernel(state_a) == routed_count_kernel(state_b)
    assert reliance_kernel(state_a) == reliance_kernel(state_b), context
    assert length_histogram_kernel(state_a) == length_histogram_kernel(
        state_b
    ), context
    for target in targets:
        assert cross_fractions_kernel(state_a, target) == (
            cross_fractions_kernel(state_b, target)
        ), f"{context}, target AS{target}"


# ---------------------------------------------------------------------------
# per-event-type differential, netgen scenarios
# ---------------------------------------------------------------------------

class TestEventDifferential:
    @pytest.mark.parametrize("profile,seed", SCENARIOS)
    def test_linkdown(self, profile, seed):
        graph = netgen_graph(profile, seed=seed)
        rng = random.Random(seed * 17 + 1)
        origins = sample_origins(graph, 3, seed=seed)
        for trial in range(6):
            edges = sorted(
                (a, b)
                for a in graph.nodes()
                for b in graph.customers(a) | graph.peers(a)
                if a < b or b in graph.customers(a)
            )
            a, b = edges[rng.randrange(len(edges))]
            applied, _ = _check_topology_event(
                graph, origins, LinkDown(a, b), f"{profile}/{seed} t{trial}"
            )
            applied.inverse.apply(graph)  # restore for the next trial

    @pytest.mark.parametrize("profile,seed", SCENARIOS)
    def test_linkup(self, profile, seed):
        graph = netgen_graph(profile, seed=seed)
        rng = random.Random(seed * 17 + 2)
        nodes = sorted(graph.nodes())
        origins = sample_origins(graph, 3, seed=seed)
        added = 0
        while added < 6:
            a, b = rng.sample(nodes, 2)
            if graph.relationship_between(a, b) is not None:
                continue
            rel = "p2p" if added % 2 else "p2c"
            applied, _ = _check_topology_event(
                graph,
                origins,
                LinkUp(a, b, relationship=rel),
                f"{profile}/{seed} add{added}",
            )
            applied.inverse.apply(graph)
            added += 1

    @pytest.mark.parametrize("profile,seed", SCENARIOS)
    def test_depeer(self, profile, seed):
        graph = netgen_graph(profile, seed=seed)
        rng = random.Random(seed * 17 + 3)
        peerings = sorted(
            (a, b) for a in graph.nodes() for b in graph.peers(a) if a < b
        )
        origins = sample_origins(graph, 3, seed=seed)
        for trial in range(4):
            a, b = peerings[rng.randrange(len(peerings))]
            applied, _ = _check_topology_event(
                graph, origins, Depeer(a, b), f"{profile}/{seed} t{trial}"
            )
            applied.inverse.apply(graph)

    @pytest.mark.parametrize("profile,seed", SCENARIOS)
    def test_asfailure_and_recover(self, profile, seed):
        graph = netgen_graph(profile, seed=seed)
        rng = random.Random(seed * 17 + 4)
        # fail high-degree transit nodes (the hard case) and random ones
        by_degree = sorted(
            graph.nodes(), key=lambda a: -len(graph.customers(a))
        )
        origins = sample_origins(graph, 3, seed=seed)
        picks = by_degree[1:3] + rng.sample(sorted(graph.nodes()), 2)
        for victim in picks:
            if victim in origins:
                continue
            applied, _ = _check_topology_event(
                graph, origins, ASFailure(victim), f"{profile}/{seed}"
            )
            recover = applied.inverse
            assert isinstance(recover, ASRecover)
            # the recovery (pure addition of every incident edge) must
            # also hold differentially, and restore the graph
            _check_topology_event(
                graph, origins, recover, f"{profile}/{seed} recover"
            )

    @pytest.mark.parametrize("profile,seed", SCENARIOS)
    def test_hijack_vs_independent_merge(self, profile, seed):
        graph = netgen_graph(profile, seed=seed)
        rng = random.Random(seed * 17 + 5)
        nodes = sorted(graph.nodes())
        for trial in range(4):
            origin, hijacker = rng.sample(nodes, 2)
            baseline = propagate_compiled(graph, Seed(asn=origin))
            applied = Hijack(hijacker).apply(graph)
            out = propagate_delta_event(graph, baseline, applied)
            # independent reference: merge two full propagations
            hstate = propagate_compiled(
                graph, Seed(asn=hijacker, key="hijack")
            )
            stolen = frozenset(hstate.routes) - {origin}
            merged = out.state
            assert merged.ases_with_origin("hijack") == stolen
            for asn in set(baseline.routes) | set(hstate.routes):
                expect = (
                    hstate.routes[asn]
                    if asn in stolen
                    else baseline.routes.get(asn)
                )
                got = merged.routes.get(asn)
                if expect is None:
                    assert got is None, f"AS{asn} routed unexpectedly"
                    continue
                assert got is not None, f"AS{asn} lost its route"
                assert (
                    got.route_class == expect.route_class
                    and got.length == expect.length
                    and got.parents == expect.parents
                ), f"{profile}/{seed} t{trial}, AS{asn}"

    @pytest.mark.parametrize("profile,seed", SCENARIOS)
    def test_routeleak(self, profile, seed):
        graph = netgen_graph(profile, seed=seed)
        rng = random.Random(seed * 17 + 6)
        nodes = sorted(graph.nodes())
        for trial in range(4):
            origin, leaker = rng.sample(nodes, 2)
            baseline = propagate_compiled(graph, Seed(asn=origin))
            length = baseline.path_length(leaker)
            event = RouteLeak(leaker) if length is not None else RouteLeak(
                leaker, initial_length=0
            )
            applied = event.apply(graph)
            out = propagate_delta_event(graph, baseline, applied)
            full = full_event_outcome(graph, baseline, applied)
            assert_states_equal(
                out.state, full.state, f"{profile}/{seed} t{trial}"
            )

    @pytest.mark.parametrize("profile,seed", SCENARIOS[:3])
    def test_metric_kernels_bit_identical(self, profile, seed):
        graph = netgen_graph(profile, seed=seed)
        rng = random.Random(seed * 17 + 7)
        nodes = sorted(graph.nodes())
        [origin] = sample_origins(graph, 1, seed=seed)
        targets = rng.sample(nodes, 3)
        by_degree = sorted(
            graph.nodes(), key=lambda a: -len(graph.customers(a))
        )
        events = [
            LinkDown(by_degree[0], sorted(graph.customers(by_degree[0]))[0]),
            ASFailure(by_degree[2]),
            Hijack(nodes[5] if nodes[5] != origin else nodes[6]),
            RouteLeak(nodes[9] if nodes[9] != origin else nodes[10], 0),
        ]
        for event in events:
            baseline = propagate_compiled(graph, Seed(asn=origin))
            applied = event.apply(graph)
            out = propagate_delta_event(graph, baseline, applied, threshold=1.0)
            full = full_event_outcome(graph, baseline, applied)
            _assert_metrics_identical(
                out.state,
                full.state,
                targets,
                f"{profile}/{seed}, {event.describe()}",
            )
            if applied.inverse is not None:
                applied.inverse.apply(graph)


# ---------------------------------------------------------------------------
# retraction regression: exact expected route sets on hand graphs
# ---------------------------------------------------------------------------

def _routes_of(state):
    """{asn: (route_class int, length, parent set)} minus the seeds."""
    return {
        asn: (int(r.route_class), r.length, set(r.parents))
        for asn, r in state.routes.items()
        if asn not in state.seed_asns
    }


class TestRetractionRegression:
    def test_severed_sole_provider_withdraws_everything(self):
        graph, _ = build_mini()
        baseline = propagate_compiled(graph, Seed(asn=301))
        assert len(baseline.routes) == 10  # everyone routed
        applied = LinkDown(12, 301).apply(graph)
        out = propagate_delta_event(graph, baseline, applied, threshold=1.0)
        assert not out.fallback
        assert _routes_of(out.state) == {}  # total withdrawal
        assert routed_count_kernel(out.state) == 0

    def test_severed_transit_withdraws_exactly_the_cone_that_used_it(self):
        # CLOUD (AS100) buys transit from AS11 only; severing 11—100 must
        # withdraw exactly the routes that transited AS11 (AS11 itself,
        # its provider AS1, and AS1's customer AS203) while every
        # peer-learned route survives untouched.
        graph, _ = build_mini()
        baseline = propagate_compiled(graph, Seed(asn=100))
        applied = LinkDown(11, 100).apply(graph)
        out = propagate_delta_event(graph, baseline, applied, threshold=1.0)
        assert not out.fallback
        assert _routes_of(out.state) == {
            2: (1, 1, {100}),
            12: (1, 1, {100}),
            201: (1, 1, {100}),
            202: (1, 1, {100}),
            301: (2, 2, {12}),
            204: (2, 2, {201}),
        }

    def test_withdrawal_reconverges_through_peer_detour(self):
        # chain 1→2→3→4 with an alternate provider 5→3 and peering 1—5:
        # severing 2—3 rolls AS1 onto a peer route through AS5 and AS2
        # onto a provider route through AS1 — withdrawal plus exact
        # re-convergence, not just deletion.
        graph = ASGraph()
        graph.add_p2c(1, 2)
        graph.add_p2c(2, 3)
        graph.add_p2c(3, 4)
        graph.add_p2c(5, 3)
        graph.add_p2p(1, 5)
        baseline = propagate_compiled(graph, Seed(asn=4))
        assert _routes_of(baseline) == {
            3: (0, 1, {4}),
            2: (0, 2, {3}),
            5: (0, 2, {3}),
            1: (0, 3, {2}),
        }
        applied = LinkDown(2, 3).apply(graph)
        out = propagate_delta_event(graph, baseline, applied, threshold=1.0)
        assert not out.fallback
        assert _routes_of(out.state) == {
            3: (0, 1, {4}),
            5: (0, 2, {3}),
            1: (1, 3, {5}),
            2: (2, 4, {1}),
        }

    def test_fallback_threshold_boundary(self):
        # severing 11—100 withdraws exactly 3 of the mini graph's 10
        # nodes: threshold 0.3 (3 > 3 is false) stays on the delta path,
        # anything lower falls back — and both produce the same state.
        graph, _ = build_mini()
        baseline = propagate_compiled(graph, Seed(asn=100))
        applied = LinkDown(11, 100).apply(graph)
        kept = propagate_delta_event(graph, baseline, applied, threshold=0.3)
        assert not kept.fallback and kept.changed is not None
        dropped = propagate_delta_event(
            graph, baseline, applied, threshold=0.29
        )
        assert dropped.fallback and dropped.changed is None
        assert "exceeds threshold" in dropped.reason
        assert_states_equal(kept.state, dropped.state, "threshold boundary")

    def test_env_threshold_is_honored(self, monkeypatch):
        graph, _ = build_mini()
        baseline = propagate_compiled(graph, Seed(asn=100))
        applied = LinkDown(11, 100).apply(graph)
        monkeypatch.setenv("REPRO_EVENT_THRESHOLD", "0.0")
        out = propagate_delta_event(graph, baseline, applied)
        assert out.fallback


# ---------------------------------------------------------------------------
# timeline runner: engine/worker equivalence + cache invalidation
# ---------------------------------------------------------------------------

def _mini_timeline():
    return parse_events(
        "down:11-100,hijack:301,up:11-100:p2c,leak:201,fail:12,depeer:100-2"
    )


class TestScenarioRunner:
    def test_rows_identical_across_engines(self):
        results = {}
        for engine in ("compiled", "incremental", "reference"):
            graph, _ = build_mini()
            runner = ScenarioRunner(
                graph,
                origins=[100, 301],
                targets=[11, 12],
                engine=engine,
                threshold=1.0,
            )
            results[engine] = runner.run(_mini_timeline())
        compiled = results["compiled"]
        for other in ("incremental", "reference"):
            for a, b in zip(compiled.records, results[other].records):
                assert (a.step, a.origin, a.event) == (b.step, b.origin, b.event)
                assert a.reachable == b.reachable, (other, a, b)
                assert a.captured == b.captured, (other, a, b)
                assert a.reliance == b.reliance, (other, a, b)
                assert a.hegemony == b.hegemony, (other, a, b)

    def test_rows_identical_across_workers(self):
        results = {}
        for workers in (None, WORKERS):
            graph, _ = build_mini()
            runner = ScenarioRunner(
                graph,
                origins=[100, 301],
                targets=[11, 12],
                engine="incremental",
                workers=workers,
                threshold=1.0,
            )
            results[workers] = runner.run(_mini_timeline())
        assert results[None] == results[WORKERS]

    @pytest.mark.parametrize("engine", ("compiled", "incremental"))
    def test_topology_events_invalidate_baselines(self, engine):
        graph, _ = build_mini()
        runner = ScenarioRunner(
            graph, origins=[100], engine=engine, threshold=1.0
        )
        runner.run(_mini_timeline())
        stats = runner.cache.stats()
        # 4 of the 6 timeline events mutate topology
        assert stats.baseline_invalidations == 4

    def test_seed_events_leave_cache_alone(self):
        graph, _ = build_mini()
        runner = ScenarioRunner(graph, origins=[100], engine="incremental")
        before_state = runner.cache.state_for(100)
        runner.run(parse_events("hijack:301,leak:201"))
        assert runner.cache.stats().baseline_invalidations == 0
        assert runner.cache.state_for(100) is before_state

    @pytest.mark.parametrize("engine", ("compiled", "incremental"))
    def test_installed_baselines_are_fresh(self, engine):
        # after a topology event the cache must serve post-event states:
        # identical to a from-scratch propagation on the mutated graph
        graph, _ = build_mini()
        runner = ScenarioRunner(
            graph, origins=[100, 301], engine=engine, threshold=1.0
        )
        runner.run(parse_events("down:11-100"))
        for origin in (100, 301):
            cached = runner.cache.state_for(origin)
            fresh = propagate_compiled(graph, Seed(asn=origin))
            assert_states_equal(cached, fresh, f"post-event cache AS{origin}")

    def test_stale_cache_would_differ(self):
        # the hazard the invalidation hook exists for: a pre-event state
        # served after the mutation is actually wrong
        graph, _ = build_mini()
        cache = RoutingStateCache(graph, engine="compiled")
        stale = cache.state_for(100)
        LinkDown(11, 100).apply(graph)
        fresh = propagate_compiled(graph, Seed(asn=100))
        assert stale.routes.keys() != fresh.routes.keys()

    def test_chained_deltas_stay_conformant(self):
        # each event's delta state becomes the next event's baseline;
        # after the whole timeline the incremental cache still matches a
        # from-scratch recompute of the final topology
        graph, _ = build_mini()
        runner = ScenarioRunner(
            graph, origins=[100], engine="incremental", threshold=1.0
        )
        runner.run(_mini_timeline())
        cached = runner.cache.state_for(100)
        fresh = propagate_compiled(graph, Seed(asn=100))
        assert_states_equal(cached, fresh, "chained timeline")

    def test_self_events_are_noops(self):
        graph, _ = build_mini()
        runner = ScenarioRunner(graph, origins=[100], engine="incremental")
        result = runner.run(parse_events("hijack:100,leak:100"))
        base = result.record(0, 100)
        for step in (1, 2):
            record = result.record(step, 100)
            assert record.reachable == base.reachable
            assert record.captured == 0

    def test_parse_events_rejects_malformed(self):
        with pytest.raises(ValueError, match="unknown or malformed"):
            parse_events("explode:1-2")
        with pytest.raises(ValueError, match="bad event token"):
            parse_events("down:1")
        with pytest.raises(ValueError, match="no events"):
            parse_events(" , ")

    @pytest.mark.parametrize("profile,seed", [("tiny", 20200901)])
    def test_netgen_timeline_engine_equivalence(self, profile, seed):
        graph = netgen_graph(profile, seed=seed)
        origins = sample_origins(graph, 3, seed=seed)
        by_degree = sorted(
            graph.nodes(), key=lambda a: -len(graph.customers(a))
        )
        hub = by_degree[0]
        victim = sorted(graph.customers(by_degree[1]))[0]
        spec = (
            f"down:{hub}-{sorted(graph.customers(hub))[0]},"
            f"fail:{victim},hijack:{by_degree[3]},leak:{by_degree[4]}"
        )
        rows = {}
        for engine in ("compiled", "incremental"):
            g = netgen_graph(profile, seed=seed)
            runner = ScenarioRunner(
                g,
                origins,
                targets=by_degree[:2],
                engine=engine,
                workers=WORKERS if engine == "incremental" else None,
                threshold=1.0,
            )
            rows[engine] = runner.run(parse_events(spec))
        for a, b in zip(
            rows["compiled"].records, rows["incremental"].records
        ):
            assert a.reachable == b.reachable, (a, b)
            assert a.captured == b.captured, (a, b)
            assert a.reliance == b.reliance, (a, b)
            assert a.hegemony == b.hegemony, (a, b)
