"""Differential harness: bit-parallel multi-origin kernel ≡ per-origin
compiled engine.

``propagate_batch`` (``repro.bgpsim.multiorigin``) runs one level-by-level
sweep for a whole batch of origins, tracking per-AS origin bitmasks; every
per-origin :class:`BatchOriginView` must be *bit-for-bit* equivalent to
the state ``propagate_compiled`` computes for that origin alone.  This
module proves full-state equality on seeded synthetic-Internet scenarios
(≥3 seeds × 2 sizes), for batch widths {1, 64, non-power-of-two} with
ragged final batches, checks metric-kernel outputs are bit-identical on
batch views, verifies the sweep consumers produce identical artifacts
batched and unbatched, and pins error parity and the views' laziness.

Set ``REPRO_TEST_WORKERS`` to change the parallel worker count (CI runs
the harness at 2).
"""

from __future__ import annotations

import os
import pickle
import random

import pytest

from .conftest import (
    assert_states_equal,
    build_mini,
    netgen_graph,
    sample_origins,
)
from repro.bgpsim import (
    DEFAULT_BATCH,
    BatchOriginView,
    BatchRoutingState,
    CompiledRoutingState,
    RoutingStateCache,
    Seed,
    cross_fractions_kernel,
    is_array_state,
    length_histogram_kernel,
    path_counts_kernel,
    propagate_batch,
    propagate_compiled,
    propagate_origins,
    reliance_kernel,
    resolve_batch,
    routed_count_kernel,
)

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "4"))

#: (profile, scenario seed) — ≥3 seeds × 2 sizes, per the acceptance bar.
SCENARIOS = [
    ("tiny", 20200901),
    ("tiny", 7),
    ("tiny", 8),
    ("small", 20200901),
    ("small", 7),
    ("small", 8),
]


class TestResolveBatch:
    def test_explicit_width(self):
        assert resolve_batch(64) == 64
        assert resolve_batch(5) == 5

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        assert resolve_batch(None) == DEFAULT_BATCH

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "96")
        assert resolve_batch(None) == 96
        # an explicit argument beats the environment
        assert resolve_batch(8) == 8

    def test_disabled_widths_collapse_to_one(self):
        assert resolve_batch(1) == 1
        assert resolve_batch(0) == 1

    def test_rejects_negative(self, monkeypatch):
        with pytest.raises(ValueError, match="batch"):
            resolve_batch(-4)
        monkeypatch.setenv("REPRO_BATCH", "-2")
        with pytest.raises(ValueError, match="batch"):
            resolve_batch(None)


class TestDifferentialNetgen:
    """Every view of one batched sweep ≡ its per-origin compiled state."""

    @pytest.mark.parametrize("profile_name,seed", SCENARIOS)
    def test_views_identical(self, profile_name, seed):
        graph = netgen_graph(profile_name, seed=seed)
        origins = sample_origins(graph, 40, seed=seed)
        batch = propagate_batch(graph, origins)
        assert batch.width == 40
        seen = []
        for origin, view in batch.views():
            seen.append(origin)
            assert isinstance(view, BatchOriginView)
            assert_states_equal(
                view,
                propagate_compiled(graph, (Seed(asn=origin),)),
                f"({profile_name}, seed={seed}, origin={origin})",
            )
        assert seen == list(origins)

    @pytest.mark.parametrize("profile_name,seed", SCENARIOS[:3])
    def test_shared_excluded_identical(self, profile_name, seed):
        graph = netgen_graph(profile_name, seed=seed)
        nodes = sorted(graph.nodes())
        rng = random.Random(seed * 17 + 3)
        excluded = frozenset(rng.sample(nodes, 5))
        origins = [
            o for o in sample_origins(graph, 30, seed=seed)
            if o not in excluded
        ]
        batch = propagate_batch(graph, origins, excluded=excluded)
        for origin, view in batch.views():
            assert_states_equal(
                view,
                propagate_compiled(
                    graph, (Seed(asn=origin),), excluded=excluded
                ),
                f"({profile_name}, seed={seed}, origin={origin}, excluded)",
            )

    def test_mini_topology_every_origin(self, mini_graph):
        origins = sorted(mini_graph.nodes())
        for origin, view in propagate_batch(mini_graph, origins).views():
            assert_states_equal(
                view,
                propagate_compiled(mini_graph, (Seed(asn=origin),)),
                f"(mini, origin={origin})",
            )

    def test_duplicate_origins_share_a_bit(self, mini_graph):
        batch = propagate_batch(mini_graph, [100, 201, 100])
        assert batch.width == 3
        assert_states_equal(
            batch.view(100),
            propagate_compiled(mini_graph, (Seed(asn=100),)),
            "(duplicate origin)",
        )


class TestBatchWidths:
    """The sweep layer chunks correctly for any width, ragged tails incl."""

    @pytest.mark.parametrize("width", [1, 5, 64])
    def test_propagate_origins_any_width(self, width):
        graph = netgen_graph("tiny", seed=7)
        # 23 origins: ragged final batch for widths 5 (23 = 4×5 + 3)
        # and 64 (single under-full batch); width 1 disables batching
        origins = sample_origins(graph, 23, seed=9)
        pairs = list(propagate_origins(graph, origins, batch=width))
        assert [origin for origin, _ in pairs] == list(origins)
        for origin, state in pairs:
            assert_states_equal(
                state,
                propagate_compiled(graph, (Seed(asn=origin),)),
                f"(width={width}, origin={origin})",
            )

    def test_width_one_is_per_origin_compiled(self):
        graph = netgen_graph("tiny", seed=8)
        origins = sample_origins(graph, 4, seed=1)
        pairs = propagate_origins(graph, origins, engine="compiled", batch=1)
        for _, state in pairs:
            assert type(state) is CompiledRoutingState

    def test_parallel_workers_and_batching_compose(self):
        graph = netgen_graph("tiny", seed=8)
        origins = sample_origins(graph, 17, seed=5)
        pairs = list(
            propagate_origins(graph, origins, workers=WORKERS, batch=4)
        )
        assert [origin for origin, _ in pairs] == list(origins)
        for origin, state in pairs:
            assert_states_equal(
                state,
                propagate_compiled(graph, (Seed(asn=origin),)),
                f"(parallel batched, origin={origin})",
            )

    def test_reference_engine_falls_back_to_per_origin(self):
        graph, _ = build_mini()
        pairs = list(
            propagate_origins(
                graph, [100, 301], engine="reference", batch=64
            )
        )
        for origin, state in pairs:
            assert not isinstance(state, CompiledRoutingState)
            assert_states_equal(
                state,
                propagate_compiled(graph, (Seed(asn=origin),)),
                f"(reference fallback, origin={origin})",
            )


class TestMetricKernelsOnViews:
    """PR-4 metric kernels run unchanged on batch views, bit-identical."""

    @pytest.mark.parametrize("profile_name,seed", [
        ("tiny", 7),
        ("small", 20200901),
    ])
    def test_kernels_bit_identical(self, profile_name, seed):
        graph = netgen_graph(profile_name, seed=seed)
        origins = sample_origins(graph, 16, seed=seed)
        targets = sample_origins(graph, 6, seed=seed + 1)
        batch = propagate_batch(graph, origins)
        for origin, view in batch.views():
            ref = propagate_compiled(graph, (Seed(asn=origin),))
            assert is_array_state(view)
            # floats compared with == on purpose: bit-identical, not close
            assert reliance_kernel(view) == reliance_kernel(ref)
            for target in targets:
                assert cross_fractions_kernel(view, target) == (
                    cross_fractions_kernel(ref, target)
                )
            assert path_counts_kernel(view) == path_counts_kernel(ref)
            assert length_histogram_kernel(view) == (
                length_histogram_kernel(ref)
            )
            assert routed_count_kernel(view) == routed_count_kernel(ref)


class TestBatchStateAPI:
    def _batch(self):
        graph = netgen_graph("tiny", seed=7)
        origins = sample_origins(graph, 12, seed=2)
        return graph, origins, propagate_batch(graph, origins)

    def test_mask_queries_stay_lazy(self):
        graph, origins, batch = self._batch()
        view = batch.view(origins[3])
        for asn in sorted(graph.nodes())[:50] + [987654]:
            view.has_route(asn)
            view.path_length(asn)
            view.route_class(asn)
        view.reachable_ases()
        # scalar queries answered straight off the batch masks: neither
        # the per-origin arrays nor the routes dict were built
        assert "_route_class" not in view.__dict__
        assert view._materialized is None

    def test_route_accessor_builds_arrays_not_routes_dict(self):
        graph, origins, batch = self._batch()
        view = batch.view(origins[0])
        ref = propagate_compiled(graph, (Seed(asn=origins[0]),))
        for asn in sorted(graph.nodes()):
            ours, theirs = view.route(asn), ref.route(asn)
            if theirs is None:
                assert ours is None
            else:
                assert ours.parents == theirs.parents
                assert ours.origins == theirs.origins
        assert view._materialized is None

    def test_view_pickles_as_standalone_compiled_state(self):
        graph, origins, batch = self._batch()
        view = batch.view(origins[1])
        clone = pickle.loads(pickle.dumps(view))
        assert type(clone) is CompiledRoutingState
        assert_states_equal(
            clone,
            propagate_compiled(graph, (Seed(asn=origins[1]),)),
            "(view pickle)",
        )

    def test_to_compiled_matches(self):
        graph, origins, batch = self._batch()
        compiled = batch.view(origins[2]).to_compiled()
        assert type(compiled) is CompiledRoutingState
        assert_states_equal(
            compiled,
            propagate_compiled(graph, (Seed(asn=origins[2]),)),
            "(to_compiled)",
        )

    def test_batch_pickle_drops_graph_and_rebinds(self):
        graph, origins, batch = self._batch()
        clone = pickle.loads(pickle.dumps(batch))
        assert isinstance(clone, BatchRoutingState)
        with pytest.raises(RuntimeError, match="bind_graph"):
            clone.view(origins[0])
        clone.bind_graph(graph)
        assert_states_equal(
            clone.view(origins[0]),
            propagate_compiled(graph, (Seed(asn=origins[0]),)),
            "(batch pickle)",
        )


class TestErrorParity:
    """The batch kernel rejects bad input like the per-origin engines."""

    def test_unknown_origin(self, mini_graph):
        with pytest.raises(KeyError, match="987654"):
            propagate_batch(mini_graph, [100, 987654])

    def test_excluded_origin(self, mini_graph):
        with pytest.raises(ValueError, match="excluded"):
            propagate_batch(mini_graph, [100, 201], excluded={201})

    def test_no_origins(self, mini_graph):
        with pytest.raises(ValueError, match="at least one origin"):
            propagate_batch(mini_graph, [])

    def test_unknown_view_origin(self, mini_graph):
        batch = propagate_batch(mini_graph, [100])
        with pytest.raises(KeyError):
            batch.view(987654)


class TestSweepConsumers:
    """Batched sweeps produce artifacts identical to the unbatched path."""

    def _scenario(self):
        graph = netgen_graph("tiny", seed=20200901)
        monitors = sample_origins(graph, 5, seed=1)
        origins = sample_origins(graph, 24, seed=2)
        prefixes = {
            origin: f"10.{i}.0.0/16" for i, origin in enumerate(origins)
        }
        return graph, monitors, origins, prefixes

    def test_collect_ribs_identical(self):
        from repro.collectors import collect_ribs

        graph, monitors, _, prefixes = self._scenario()
        unbatched = collect_ribs(
            graph, monitors, prefixes, rng=random.Random(7), batch=1
        )
        batched = collect_ribs(
            graph, monitors, prefixes, rng=random.Random(7), batch=8
        )
        assert unbatched == batched

    def test_global_hegemony_identical(self):
        from repro.core.hegemony import global_hegemony

        graph, _, origins, _ = self._scenario()
        targets = origins[:4]
        unbatched = global_hegemony(
            graph, targets=targets, sample=25, rng=random.Random(3), batch=1
        )
        batched = global_hegemony(
            graph, targets=targets, sample=25, rng=random.Random(3), batch=8
        )
        assert unbatched == batched  # bit-identical floats

    def test_reliance_summaries_identical(self):
        from repro.core.reliance import hierarchy_free_reliance_summaries
        from repro.topology import infer_tiers

        graph, _, origins, _ = self._scenario()
        tiers = infer_tiers(graph, tier2_count=10, min_tier1_adjacency=1)
        unbatched = hierarchy_free_reliance_summaries(
            graph, origins[:5], tiers, batch=1
        )
        batched = hierarchy_free_reliance_summaries(
            graph, origins[:5], tiers, batch=4
        )
        assert unbatched == batched

    def test_cache_prefetch_batched_states_identical(self):
        graph, _, origins, _ = self._scenario()
        cache = RoutingStateCache(graph, batch=8)
        cache.prefetch(origins, workers=WORKERS)
        for origin in origins:
            assert_states_equal(
                cache.state_for(origin),
                propagate_compiled(graph, (Seed(asn=origin),)),
                f"(prefetched origin={origin})",
            )
