"""Property-based tests for the substrates around the core: CAIDA I/O,
LPM resolution, geometry, population helpers."""

from __future__ import annotations

import ipaddress
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pathlen import PathLengthMix, normalize_mix
from repro.geo import haversine_km
from repro.mapping import IpAsnService
from repro.netgen.population import zipf_shares
from repro.topology import dumps_graph, parse_graph

from .conftest import random_internet

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestCaidaRoundTrip:
    @RELAXED
    @given(seed=st.integers(0, 10**6), serial=st.sampled_from([1, 2]))
    def test_graph_survives_serialization(self, seed, serial):
        graph = random_internet(random.Random(seed))
        text = dumps_graph(graph, serial=serial)
        again = parse_graph(text)
        assert sorted(again.nodes()) == sorted(graph.nodes())
        assert again.edge_count() == graph.edge_count()
        for record in graph.records():
            assert (
                again.relationship_between(record.left, record.right)
                is record.relationship
            )


class TestLongestPrefixMatch:
    @RELAXED
    @given(
        data=st.lists(
            st.tuples(st.integers(0, 2**32 - 1), st.integers(8, 28)),
            min_size=1,
            max_size=20,
        ),
        probe=st.integers(0, 2**32 - 1),
    )
    def test_lpm_returns_longest_covering_prefix(self, data, probe):
        service = IpAsnService()
        networks: list[tuple[ipaddress.IPv4Network, int]] = []
        for index, (base, length) in enumerate(data):
            network = ipaddress.IPv4Network((base, length), strict=False)
            try:
                service.announce(network, index + 1)
                networks.append((network, index + 1))
            except ValueError:
                pass  # same prefix announced twice with different ASN
        address = ipaddress.IPv4Address(probe)
        expected = None
        best_len = -1
        for network, asn in networks:
            if address in network and network.prefixlen > best_len:
                expected, best_len = asn, network.prefixlen
        assert service.lookup(address) == expected


class TestGeometry:
    @settings(max_examples=50, deadline=None)
    @given(
        lat1=st.floats(-90, 90),
        lon1=st.floats(-180, 180),
        lat2=st.floats(-90, 90),
        lon2=st.floats(-180, 180),
    )
    def test_haversine_symmetric_and_bounded(self, lat1, lon1, lat2, lon2):
        d1 = haversine_km(lat1, lon1, lat2, lon2)
        d2 = haversine_km(lat2, lon2, lat1, lon1)
        assert d1 == pytest.approx(d2, abs=1e-6)
        assert 0.0 <= d1 <= 20040.0  # half circumference + rounding

    @settings(max_examples=50, deadline=None)
    @given(lat=st.floats(-90, 90), lon=st.floats(-180, 180))
    def test_haversine_identity(self, lat, lon):
        assert haversine_km(lat, lon, lat, lon) == 0.0


class TestDistributions:
    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(1, 200), exponent=st.floats(0.1, 3.0))
    def test_zipf_shares_are_a_distribution(self, n, exponent):
        shares = zipf_shares(n, exponent)
        assert len(shares) == n
        assert sum(shares) == pytest.approx(1.0)
        assert all(s > 0 for s in shares)
        assert shares == sorted(shares, reverse=True)

    @settings(max_examples=50, deadline=None)
    @given(
        one=st.floats(0, 1000),
        two=st.floats(0, 1000),
        three=st.floats(0, 1000),
    )
    def test_normalize_mix_is_a_distribution(self, one, two, three):
        mix = normalize_mix({"1": one, "2": two, "3+": three})
        assert isinstance(mix, PathLengthMix)
        total = mix.one_hop + mix.two_hop + mix.three_plus
        assert total == 0.0 or total == pytest.approx(1.0)
