"""Unit tests for the geography substrate."""

import pytest

from repro.geo import (
    CONTINENT_ORDER,
    COVERAGE_RADII_KM,
    Continent,
    PopulationGrid,
    WORLD_CITIES,
    cities_in,
    city_by_code,
    coverage_rows,
    haversine_km,
    largest_cities,
    population_coverage,
    rtt_floor_ms,
    total_population_m,
    within_km,
)


class TestCities:
    def test_dataset_sanity(self):
        assert len(WORLD_CITIES) > 100
        codes = {c.code for c in WORLD_CITIES}
        assert len(codes) == len(WORLD_CITIES)
        for city in WORLD_CITIES:
            assert -90 <= city.lat <= 90
            assert -180 <= city.lon <= 180
            assert city.population_m > 0

    def test_lookup(self):
        nyc = city_by_code("NYC")
        assert nyc.name == "New York"
        assert nyc.continent is Continent.NORTH_AMERICA
        with pytest.raises(KeyError):
            city_by_code("xxx")

    def test_every_continent_represented(self):
        for continent in Continent:
            assert cities_in(continent)

    def test_largest_cities_sorted(self):
        top = largest_cities(5)
        pops = [c.population_m for c in top]
        assert pops == sorted(pops, reverse=True)
        assert top[0].name == "Tokyo"

    def test_total_population(self):
        assert 800 < total_population_m() < 2000  # ~1.1B metro residents


class TestDistance:
    def test_zero_distance(self):
        assert haversine_km(51.5, -0.1, 51.5, -0.1) == 0.0

    def test_known_distance_london_paris(self):
        lon = city_by_code("lon")
        par = city_by_code("par")
        d = haversine_km(lon.lat, lon.lon, par.lat, par.lon)
        assert 330 < d < 360  # ~344 km

    def test_antipodal_is_half_circumference(self):
        d = haversine_km(0, 0, 0, 180)
        assert d == pytest.approx(20015, rel=0.01)

    def test_within_km(self):
        assert within_km(0, 0, 0, 1, 112)
        assert not within_km(0, 0, 0, 2, 112)

    def test_rtt_floor_increases_with_distance(self):
        assert rtt_floor_ms(100) < rtt_floor_ms(1000)
        assert rtt_floor_ms(100) == pytest.approx(1.5, rel=0.01)


class TestPopulationGrid:
    def test_total_preserved(self):
        grid = PopulationGrid()
        assert grid.total_population == pytest.approx(
            total_population_m() * 1e6, rel=1e-9
        )

    def test_city_center_coverage(self):
        grid = PopulationGrid()
        tokyo = city_by_code("tyo")
        covered = grid.population_within([(tokyo.lat, tokyo.lon)], 500)
        # all of Tokyo plus Nagoya etc.; far more than Tokyo's core weight
        assert covered >= 37.3e6 * 0.46

    def test_no_coverage_in_ocean(self):
        grid = PopulationGrid()
        assert grid.population_within([(-48.0, -120.0)], 300) == 0.0

    def test_union_not_double_counted(self):
        grid = PopulationGrid()
        tokyo = city_by_code("tyo")
        point = (tokyo.lat, tokyo.lon)
        single = grid.population_within([point], 500)
        double = grid.population_within([point, point], 500)
        assert single == double

    def test_continent_restriction(self):
        grid = PopulationGrid()
        europe = grid.continent_population(Continent.EUROPE)
        assert 0 < europe < grid.total_population
        lon = city_by_code("lon")
        covered = grid.population_within(
            [(lon.lat, lon.lon)], 500, Continent.ASIA
        )
        assert covered == 0.0


class TestCoverage:
    def test_radii_constants(self):
        assert COVERAGE_RADII_KM == (500, 700, 1000)

    def test_coverage_monotone_in_radius(self):
        grid = PopulationGrid()
        lon = city_by_code("lon")
        cov = population_coverage(grid, [(lon.lat, lon.lon)])
        assert 0 < cov[500] <= cov[700] <= cov[1000] <= 1.0

    def test_coverage_rows_world_and_continent(self):
        grid = PopulationGrid()
        lon = city_by_code("lon")
        rows = coverage_rows(
            grid, {"TestNet": [(lon.lat, lon.lon)]}, per_continent=True
        )
        labels = {(r.label, r.region) for r in rows}
        assert ("TestNet", "World") in labels
        assert ("TestNet", "Europe") in labels
        assert len(rows) == 1 + len(CONTINENT_ORDER)
        world = next(r for r in rows if r.region == "World")
        assert 0 < world.percent(500) <= world.percent(1000) <= 100
        with pytest.raises(KeyError):
            world.percent(123)

    def test_empty_footprint_zero_coverage(self):
        grid = PopulationGrid()
        cov = population_coverage(grid, [])
        assert cov == {500: 0.0, 700: 0.0, 1000: 0.0}
