"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def generated(tmp_path_factory):
    base = tmp_path_factory.mktemp("cli")
    rel = base / "net.as-rel2.txt"
    mrt = base / "rib.txt"
    code = main(
        [
            "generate", "tiny", "-o", str(rel), "--seed", "5",
            "--mrt", str(mrt),
        ]
    )
    assert code == 0
    return rel, mrt


class TestGenerate:
    def test_writes_caida_file(self, generated, capsys):
        rel, mrt = generated
        assert rel.exists() and mrt.exists()
        text = rel.read_text()
        assert text.startswith("#")
        assert "|" in text.splitlines()[2]
        assert "TABLE_DUMP2|" in mrt.read_text()

    def test_serial1_output(self, tmp_path, capsys):
        out = tmp_path / "s1.txt"
        assert main(["generate", "tiny", "-o", str(out), "--serial", "1"]) == 0
        data_lines = [
            l for l in out.read_text().splitlines() if not l.startswith("#")
        ]
        assert all(len(l.split("|")) == 3 for l in data_lines)

    def test_unknown_profile_fails(self, tmp_path):
        with pytest.raises(KeyError):
            main(["generate", "bogus", "-o", str(tmp_path / "x.txt")])


class TestReach:
    def test_reach_known_origin(self, generated, capsys):
        rel, _ = generated
        assert main(["reach", str(rel), "15169"]) == 0
        out = capsys.readouterr().out
        assert "hierarchy-free" in out
        assert "AS15169" in out

    def test_reach_unknown_origin(self, generated, capsys):
        rel, _ = generated
        assert main(["reach", str(rel), "999999"]) == 1
        assert "error" in capsys.readouterr().err


class TestSweep:
    def test_sweep_prints_ranked_table(self, generated, capsys):
        rel, _ = generated
        assert main(["sweep", str(rel), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert out.count("AS") >= 5
        assert "1." in out


class TestLeak:
    def test_leak_all_configs(self, generated, capsys):
        rel, _ = generated
        assert main(["leak", str(rel), "15169", "--leakers", "8"]) == 0
        out = capsys.readouterr().out
        assert "announce_all" in out
        assert "announce_hierarchy_only" in out

    def test_leak_single_config(self, generated, capsys):
        rel, _ = generated
        assert (
            main(
                [
                    "leak", str(rel), "15169", "--leakers", "5",
                    "--config", "announce_all",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "announce_all" in out
        assert "t1t2_lock" not in out


class TestInfer:
    def test_infer_with_truth_and_output(self, generated, tmp_path, capsys):
        rel, mrt = generated
        out_file = tmp_path / "inferred.txt"
        assert (
            main(
                [
                    "infer", str(mrt), "--algorithm", "asrank",
                    "--truth", str(rel), "-o", str(out_file),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "inferred" in out
        assert "overall" in out
        assert out_file.exists()

    def test_infer_gao(self, generated, capsys):
        _, mrt = generated
        assert main(["infer", str(mrt), "--algorithm", "gao"]) == 0
        assert "gao" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_help_lists_subcommands(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        for command in ("generate", "reach", "sweep", "leak", "infer"):
            assert command in out

    def test_vector_and_shm_flags_set_knobs(self, generated, monkeypatch):
        import os

        rel, _ = generated
        # setenv records the original state, so the values main() writes
        # are rolled back at teardown
        monkeypatch.setenv("REPRO_VECTOR", "auto")
        monkeypatch.setenv("REPRO_SHM", "auto")
        code = main(
            ["--vector", "off", "--shm", "off", "reach", str(rel), "15169"]
        )
        assert code == 0
        assert os.environ["REPRO_VECTOR"] == "off"
        assert os.environ["REPRO_SHM"] == "off"

    def test_invalid_vector_mode_rejected(self, generated):
        rel, _ = generated
        with pytest.raises(SystemExit):
            main(["--vector", "sideways", "reach", str(rel), "15169"])
