"""Property-based timeline tests: apply ∘ revert is the identity.

Every event's :meth:`~repro.bgpsim.events.Event.apply` returns an
:class:`~repro.bgpsim.events.AppliedEvent` carrying its inverse.  On
random topologies and random event sequences, applying the whole
sequence and then the reversed inverses must return

* the ``ASGraph`` records (providers/customers/peers of every AS),
* the ``ASGraph.compile()`` CSR arrays (catching stale-CSR /
  missed-``_version``-bump bugs in the mutation paths), and
* the propagation state for any origin

exactly to their baselines.  Along the forward pass, every
topology-mutating step is also checked differentially (delta ≡ full
recompute on the mutated graph), so random *sequences* of chained
mutations get the same conformance bar as the curated scenarios in
``tests/test_event_engine.py``.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bgpsim import (
    ASFailure,
    Depeer,
    LinkDown,
    LinkUp,
    Seed,
    propagate_compiled,
    propagate_delta_event,
)

from .conftest import assert_states_equal, random_internet

TIMELINE_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _graph_snapshot(graph):
    return {
        asn: (
            frozenset(graph.providers(asn)),
            frozenset(graph.customers(asn)),
            frozenset(graph.peers(asn)),
        )
        for asn in graph.nodes()
    }


def _csr_snapshot(graph):
    cg = graph.compile()
    return (
        tuple(cg.asns),
        bytes(cg.provider_off.tobytes()),
        bytes(cg.provider_nbr.tobytes()),
        bytes(cg.customer_off.tobytes()),
        bytes(cg.customer_nbr.tobytes()),
        bytes(cg.peer_off.tobytes()),
        bytes(cg.peer_nbr.tobytes()),
    )


def _random_event(graph, rng, origin):
    """A random applicable topology event on the current graph state."""
    nodes = sorted(graph.nodes())
    for _ in range(50):
        kind = rng.randrange(4)
        if kind == 0:
            edges = [
                (a, b)
                for a in nodes
                for b in graph.customers(a) | graph.peers(a)
            ]
            if edges:
                return LinkDown(*rng.choice(sorted(edges)))
        elif kind == 1:
            a, b = rng.sample(nodes, 2)
            if graph.relationship_between(a, b) is None:
                rel = rng.choice(("p2p", "p2c"))
                return LinkUp(a, b, relationship=rel)
        elif kind == 2:
            peerings = [
                (a, b) for a in nodes for b in graph.peers(a) if a < b
            ]
            if peerings:
                return Depeer(*rng.choice(sorted(peerings)))
        else:
            victim = rng.choice(nodes)
            if victim != origin:
                return ASFailure(victim)
    raise AssertionError("no applicable event found")


class TestApplyRevertIdentity:
    @TIMELINE_SETTINGS
    @given(seed=st.integers(0, 10**6), steps=st.integers(1, 6))
    def test_sequence_and_reversed_inverses_restore_baseline(
        self, seed, steps
    ):
        rng = random.Random(seed)
        graph = random_internet(rng, n_transit=4, n_edge=10)
        nodes = sorted(graph.nodes())
        origin = nodes[seed % len(nodes)]
        graph_before = _graph_snapshot(graph)
        csr_before = _csr_snapshot(graph)
        state_before = propagate_compiled(graph, Seed(asn=origin))

        applied_stack = []
        state = state_before
        for _ in range(steps):
            event = _random_event(graph, rng, origin)
            applied = event.apply(graph)
            applied_stack.append(applied)
            # forward conformance: delta over the previous state must
            # equal a full recompute on the mutated graph
            out = propagate_delta_event(graph, state, applied, threshold=1.0)
            full = propagate_compiled(graph, Seed(asn=origin))
            assert_states_equal(out.state, full, f"forward {event.describe()}")
            state = out.state

        for applied in reversed(applied_stack):
            assert applied.inverse is not None
            applied.inverse.apply(graph)

        assert _graph_snapshot(graph) == graph_before
        assert _csr_snapshot(graph) == csr_before
        restored = propagate_compiled(graph, Seed(asn=origin))
        assert_states_equal(restored, state_before, "after revert")

    @TIMELINE_SETTINGS
    @given(seed=st.integers(0, 10**6))
    def test_reverting_through_deltas_restores_the_state_too(self, seed):
        # the delta engine itself round-trips: applying the inverse event
        # as a *delta* over the post-event state lands exactly on the
        # baseline state (not merely an equivalent graph)
        rng = random.Random(seed)
        graph = random_internet(rng, n_transit=4, n_edge=10)
        nodes = sorted(graph.nodes())
        origin = nodes[seed % len(nodes)]
        baseline = propagate_compiled(graph, Seed(asn=origin))
        event = _random_event(graph, rng, origin)
        applied = event.apply(graph)
        forward = propagate_delta_event(
            graph, baseline, applied, threshold=1.0
        )
        reverted = applied.inverse.apply(graph)
        back = propagate_delta_event(
            graph, forward.state, reverted, threshold=1.0
        )
        assert_states_equal(back.state, baseline, "delta round-trip")

    @TIMELINE_SETTINGS
    @given(seed=st.integers(0, 10**6))
    def test_asfailure_inverse_restores_every_edge(self, seed):
        rng = random.Random(seed)
        graph = random_internet(rng, n_transit=4, n_edge=10)
        nodes = sorted(graph.nodes())
        victim = rng.choice(nodes)
        before = _graph_snapshot(graph)
        applied = ASFailure(victim).apply(graph)
        assert not graph.providers(victim)
        assert not graph.customers(victim)
        assert not graph.peers(victim)
        applied.inverse.apply(graph)
        assert _graph_snapshot(graph) == before
