"""Unit tests for the ASGraph substrate."""

import pytest

from repro.topology import ASGraph, Relationship, RelationshipConflictError
from repro.topology.relationships import RelationshipRecord

from .conftest import CLOUD, E1, T1A, T1B, T2A, T2B


class TestConstruction:
    def test_add_p2c_sets_both_directions(self):
        g = ASGraph()
        g.add_p2c(1, 2)
        assert g.customers(1) == {2}
        assert g.providers(2) == {1}
        assert g.peers(1) == frozenset()

    def test_add_p2p_is_symmetric(self):
        g = ASGraph()
        g.add_p2p(1, 2)
        assert g.peers(1) == {2}
        assert g.peers(2) == {1}

    def test_self_loop_rejected(self):
        g = ASGraph()
        with pytest.raises(ValueError):
            g.add_p2c(5, 5)
        with pytest.raises(ValueError):
            g.add_p2p(5, 5)

    def test_negative_asn_rejected(self):
        g = ASGraph()
        with pytest.raises(ValueError):
            g.add_as(-1)

    def test_p2p_conflicts_with_existing_p2c(self):
        g = ASGraph()
        g.add_p2c(1, 2)
        with pytest.raises(RelationshipConflictError):
            g.add_p2p(1, 2)

    def test_p2c_conflicts_with_existing_p2p(self):
        g = ASGraph()
        g.add_p2p(1, 2)
        with pytest.raises(RelationshipConflictError):
            g.add_p2c(1, 2)

    def test_mutual_transit_rejected(self):
        g = ASGraph()
        g.add_p2c(1, 2)
        with pytest.raises(RelationshipConflictError):
            g.add_p2c(2, 1)

    def test_duplicate_edges_idempotent(self):
        g = ASGraph()
        g.add_p2c(1, 2)
        g.add_p2c(1, 2)
        g.add_p2p(3, 4)
        g.add_p2p(4, 3)
        assert g.edge_count() == 2

    def test_add_record(self):
        g = ASGraph()
        g.add_record(RelationshipRecord(1, 2, Relationship.PROVIDER_CUSTOMER))
        g.add_record(RelationshipRecord(2, 3, Relationship.PEER_PEER))
        assert g.customers(1) == {2}
        assert g.peers(2) == {3}


class TestQueries:
    def test_mini_membership(self, mini_graph):
        assert CLOUD in mini_graph
        assert 999999 not in mini_graph
        assert len(mini_graph) == 10

    def test_neighbors_union(self, mini_graph):
        assert mini_graph.neighbors(CLOUD) == {T2A, T2B, T1B, E1, 202}

    def test_relationship_between(self, mini_graph):
        assert (
            mini_graph.relationship_between(T2A, CLOUD)
            is Relationship.PROVIDER_CUSTOMER
        )
        assert (
            mini_graph.relationship_between(CLOUD, T2B)
            is Relationship.PEER_PEER
        )
        assert mini_graph.relationship_between(CLOUD, T1A) is None
        assert mini_graph.relationship_between(CLOUD, 424242) is None

    def test_degrees(self, mini_graph):
        assert mini_graph.degree(CLOUD) == 5
        assert mini_graph.transit_degree(CLOUD) == 1  # only its provider
        assert mini_graph.transit_degree(T2A) == 3  # AS1 + two customers

    def test_is_stub(self, mini_graph):
        assert mini_graph.is_stub(CLOUD)
        assert not mini_graph.is_stub(E1)
        assert not mini_graph.is_stub(T1A)

    def test_edge_count(self, mini_graph):
        assert mini_graph.edge_count() == 14

    def test_records_roundtrip(self, mini_graph):
        rebuilt = ASGraph()
        for record in mini_graph.records():
            rebuilt.add_record(record)
        assert sorted(rebuilt.nodes()) == sorted(mini_graph.nodes())
        assert rebuilt.edge_count() == mini_graph.edge_count()


class TestDerivedGraphs:
    def test_copy_is_independent(self, mini_graph):
        clone = mini_graph.copy()
        clone.add_p2p(CLOUD, T1A)
        assert mini_graph.relationship_between(CLOUD, T1A) is None
        assert clone.relationship_between(CLOUD, T1A) is Relationship.PEER_PEER

    def test_without_removes_nodes_and_edges(self, mini_graph):
        sub = mini_graph.without({T1A, T1B})
        assert T1A not in sub
        assert T2A in sub
        assert sub.providers(T2A) == frozenset()
        sub.validate()

    def test_remove_edge(self, mini_graph):
        g = mini_graph.copy()
        g.remove_edge(CLOUD, T2B)
        assert g.relationship_between(CLOUD, T2B) is None
        g.remove_edge(T2A, CLOUD)
        assert g.providers(CLOUD) == frozenset()
        with pytest.raises(KeyError):
            g.remove_edge(CLOUD, T2B)
        g.validate()

    def test_validate_passes_on_mini(self, mini_graph):
        mini_graph.validate()
