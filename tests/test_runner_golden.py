"""Golden regression tests for the experiment runner on the ``small``
profile.

The scenario generator, the measurement campaign and every sweep are
seeded, so these key scalar outputs are exact, reproducible constants.
Perf refactors of the propagation engine (parallelism, caching, fast
paths) must not change a single one of them; if a *deliberate* model
change shifts them, the goldens below are the one place to update.

Marked ``slow`` (two full §4 pipeline builds, ~20 s): ``make test-fast``
skips this module, the tier-1 suite and CI run it.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig2_reachability, fig7_10_leaks, table1_top20
from repro.experiments.context import build_context
from repro.netgen import companion_2015

pytestmark = pytest.mark.slow

LEAKS_PER_CONFIG = 20
BASELINE = {"baseline_origins": 6, "baseline_leakers": 6}

#: Table 1 (2020): (rank, ASN, hierarchy-free reachability) of the top 10.
GOLDEN_TABLE1_TOP10 = [
    (1, 6939, 613),
    (2, 8075, 581),
    (3, 15169, 572),
    (4, 36351, 502),
    (5, 3356, 491),
    (6, 16509, 425),
    (7, 174, 418),
    (8, 2914, 409),
    (9, 3257, 388),
    (10, 9002, 369),
]
GOLDEN_CLOUD_RANKS_2020 = {"Google": 3, "Microsoft": 2, "IBM": 4, "Amazon": 6}
GOLDEN_CLOUD_RANKS_2015 = {"Google": 4, "Microsoft": 28, "IBM": 8, "Amazon": 15}

#: Fig. 2: (full, provider-free, tier1-free, hierarchy-free) per cloud.
GOLDEN_FIG2_CLOUDS = {
    "Google": (693, 687, 675, 572),
    "Microsoft": (693, 664, 662, 581),
    "IBM": (693, 638, 590, 502),
    "Amazon": (693, 519, 519, 425),
}
GOLDEN_FIG2_TOTAL = 694

#: Fig. 7/8: mean detoured-AS fraction per origin and configuration.
GOLDEN_FIG7_MEANS = {
    "Google": {
        "announce_all": 0.074783,
        "announce_all_t1_lock": 0.060188,
        "announce_all_t1t2_lock": 0.012139,
        "announce_all_global_lock": 0.002601,
        "announce_hierarchy_only": 0.212283,
    },
    "Microsoft": {
        "announce_all": 0.030130,
        "announce_all_t1_lock": 0.029335,
        "announce_all_t1t2_lock": 0.011199,
        "announce_all_global_lock": 0.004986,
        "announce_hierarchy_only": 0.049494,
    },
    "IBM": {
        "announce_all": 0.021965,
        "announce_all_t1_lock": 0.022038,
        "announce_all_t1t2_lock": 0.011705,
        "announce_all_global_lock": 0.005564,
        "announce_hierarchy_only": 0.033815,
    },
    "Amazon": {
        "announce_all": 0.011055,
        "announce_all_t1_lock": 0.011055,
        "announce_all_t1t2_lock": 0.009971,
        "announce_all_global_lock": 0.001951,
        "announce_hierarchy_only": 0.012283,
    },
    "Facebook": {
        "announce_all": 0.275867,
        "announce_all_t1_lock": 0.275867,
        "announce_all_t1t2_lock": 0.079841,
        "announce_all_global_lock": 0.064740,
        "announce_hierarchy_only": 0.321676,
    },
}
GOLDEN_AVG_RESILIENCE_MEAN = 0.246106
GOLDEN_AVG_RESILIENCE_N = 36


@pytest.fixture(scope="module")
def ctx():
    return build_context("small")


@pytest.fixture(scope="module")
def ctx2015():
    return build_context(companion_2015("small"))


class TestTable1Golden:
    def test_top10(self, ctx, ctx2015):
        result = table1_top20.run(ctx, ctx2015)
        top10 = [
            (e.rank, e.asn, e.reachability) for e in result.entries_2020[:10]
        ]
        assert top10 == GOLDEN_TABLE1_TOP10
        assert result.cloud_ranks_2020 == GOLDEN_CLOUD_RANKS_2020
        assert result.cloud_ranks_2015 == GOLDEN_CLOUD_RANKS_2015


class TestFig2Golden:
    def test_cloud_reachability(self, ctx):
        result = fig2_reachability.run(ctx)
        rows = {
            r.name: (
                r.report.full,
                r.report.provider_free,
                r.report.tier1_free,
                r.report.hierarchy_free,
            )
            for r in result.cloud_rows()
        }
        assert rows == GOLDEN_FIG2_CLOUDS
        assert result.total_ases == GOLDEN_FIG2_TOTAL


class TestFig7Golden:
    @pytest.fixture(scope="class")
    def result(self, ctx):
        return fig7_10_leaks.run(
            ctx, leaks_per_config=LEAKS_PER_CONFIG, **BASELINE
        )

    def test_leak_resilience_means(self, result):
        means = {
            origin.name: {
                configuration: origin.mean(configuration)
                for configuration in origin.curves
            }
            for origin in result.origins
        }
        assert means.keys() == GOLDEN_FIG7_MEANS.keys()
        for name, golden in GOLDEN_FIG7_MEANS.items():
            for configuration, value in golden.items():
                assert means[name][configuration] == pytest.approx(
                    value, abs=5e-7
                ), f"{name}/{configuration}"

    def test_average_resilience(self, result):
        assert len(result.average_resilience) == GOLDEN_AVG_RESILIENCE_N
        assert result.average_mean == pytest.approx(
            GOLDEN_AVG_RESILIENCE_MEAN, abs=5e-7
        )

    def test_workers_do_not_change_results(self, ctx, result):
        parallel = fig7_10_leaks.run(
            ctx, leaks_per_config=LEAKS_PER_CONFIG, workers=2, **BASELINE
        )
        assert parallel.average_resilience == result.average_resilience
        for serial_origin, parallel_origin in zip(
            result.origins, parallel.origins
        ):
            assert serial_origin.curves == parallel_origin.curves
