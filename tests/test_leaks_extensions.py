"""Unit tests for the leak-model extensions (sub-prefix hijack, lock
coverage sweep)."""

import random

import pytest

from repro.bgpsim import LeakMode
from repro.core import (
    PeerLockSemantics,
    lock_coverage_sweep,
    simulate_leak,
)

from .conftest import CLOUD, CONTENT, E3, T2B


class TestSubprefixHijack:
    def test_subprefix_detours_everyone_reachable(self, mini_graph):
        outcome = simulate_leak(
            mini_graph, CLOUD, CONTENT, mode=LeakMode.SUBPREFIX
        )
        # the more-specific always wins: everyone with any route to the
        # leaker is detoured, except the origin itself
        assert outcome.detoured == (
            frozenset(mini_graph.nodes()) - {CLOUD, CONTENT}
        )

    def test_subprefix_worse_than_equal_length_modes(self, mini_graph):
        leak = simulate_leak(mini_graph, CLOUD, CONTENT)
        hijack = simulate_leak(mini_graph, CLOUD, CONTENT, mode=LeakMode.HIJACK)
        subprefix = simulate_leak(
            mini_graph, CLOUD, CONTENT, mode=LeakMode.SUBPREFIX
        )
        assert leak.detoured <= hijack.detoured <= subprefix.detoured

    def test_peer_locking_still_filters_subprefix(self, mini_graph):
        locked = simulate_leak(
            mini_graph, CLOUD, CONTENT, mode=LeakMode.SUBPREFIX,
            peer_locked=mini_graph.neighbors(CLOUD),
        )
        unlocked = simulate_leak(
            mini_graph, CLOUD, CONTENT, mode=LeakMode.SUBPREFIX
        )
        # AS12 (locked) drops the leak entirely, protecting its cone and
        # everything behind it
        assert T2B not in locked.detoured
        assert locked.detoured < unlocked.detoured

    def test_original_semantics_weaker_on_subprefix(self, mini_graph):
        locks = mini_graph.neighbors(CLOUD)
        erratum = simulate_leak(
            mini_graph, CLOUD, CONTENT, mode=LeakMode.SUBPREFIX,
            peer_locked=locks, semantics=PeerLockSemantics.ERRATUM,
        )
        original = simulate_leak(
            mini_graph, CLOUD, CONTENT, mode=LeakMode.SUBPREFIX,
            peer_locked=locks, semantics=PeerLockSemantics.ORIGINAL,
        )
        assert erratum.detoured <= original.detoured

    def test_disconnected_leaker_detours_nobody(self, mini_graph):
        g = mini_graph.copy()
        g.add_as(999)
        outcome = simulate_leak(g, CLOUD, 999, mode=LeakMode.SUBPREFIX)
        assert outcome.detoured == frozenset()


class TestLockCoverageSweep:
    def test_zero_coverage_equals_plain_leak(self, mini_graph):
        leakers = [CONTENT, E3]
        sweep = lock_coverage_sweep(
            mini_graph, CLOUD, leakers, coverages=(0.0,),
        )
        expected = []
        for leaker in leakers:
            outcome = simulate_leak(mini_graph, CLOUD, leaker)
            expected.append(outcome.fraction_detoured)
        assert sweep[0.0] == pytest.approx(sum(expected) / len(expected))

    def test_sweep_trends_downward(self, mini_graph):
        leakers = sorted(a for a in mini_graph.nodes() if a != CLOUD)
        sweep = lock_coverage_sweep(
            mini_graph, CLOUD, leakers,
            coverages=(0.0, 0.5, 1.0),
            rng=random.Random(4),
        )
        assert sweep[1.0] <= sweep[0.0] + 1e-9
        assert set(sweep) == {0.0, 0.5, 1.0}

    def test_full_coverage_matches_global_lock(self, mini_graph):
        from repro.core import configuration_seed_and_locks
        from repro.topology import TierAssignment

        leakers = sorted(a for a in mini_graph.nodes() if a != CLOUD)
        sweep = lock_coverage_sweep(
            mini_graph, CLOUD, leakers, coverages=(1.0,)
        )
        fractions = []
        for leaker in leakers:
            outcome = simulate_leak(
                mini_graph, CLOUD, leaker,
                peer_locked=mini_graph.neighbors(CLOUD),
            )
            if outcome is not None:
                fractions.append(outcome.fraction_detoured)
        assert sweep[1.0] == pytest.approx(sum(fractions) / len(fractions))
