"""Unit tests for valley-free reachability and the bitset cone engine."""

import random

import pytest

from repro.bgpsim import Seed, propagate
from repro.core import ConeEngine, reachability, reachable_set
from repro.core.metrics import (
    hierarchy_free_reachability,
    provider_free_reachability,
)

from .conftest import (
    CLOUD,
    CONTENT,
    E1,
    E2,
    E3,
    E4,
    T1A,
    T1B,
    T2A,
    T2B,
    random_internet,
)


class TestReachableSet:
    def test_full_reach_from_cloud(self, mini_graph):
        reach = reachable_set(mini_graph, CLOUD)
        assert reach == frozenset(mini_graph.nodes()) - {CLOUD}

    def test_provider_free_from_cloud(self, mini_graph):
        reach = reachable_set(mini_graph, CLOUD, excluded={T2A})
        assert reach == {T2B, T1B, E1, E2, E4, CONTENT}

    def test_tier1_free_from_cloud(self, mini_graph):
        reach = reachable_set(mini_graph, CLOUD, excluded={T2A, T1A, T1B})
        assert reach == {T2B, E1, E2, E4, CONTENT}

    def test_hierarchy_free_from_cloud(self, mini_graph):
        reach = reachable_set(
            mini_graph, CLOUD, excluded={T2A, T2B, T1A, T1B}
        )
        assert reach == {E1, E2, E4}

    def test_origin_never_in_result_even_if_excluded_listed(self, mini_graph):
        reach = reachable_set(mini_graph, CLOUD, excluded={CLOUD})
        assert CLOUD not in reach
        assert reach  # exclusion of the origin itself is ignored

    def test_unknown_origin_raises(self, mini_graph):
        with pytest.raises(KeyError):
            reachable_set(mini_graph, 987654)

    def test_tier1_origin_reaches_everything(self, mini_graph):
        assert reachability(mini_graph, T1A) == len(mini_graph) - 1

    def test_matches_bgp_propagation(self, mini_graph):
        for origin in mini_graph.nodes():
            state = propagate(mini_graph, Seed(asn=origin))
            assert reachable_set(mini_graph, origin) == state.reachable_ases()

    def test_matches_bgp_propagation_excluded(self, mini_graph, mini_tiers):
        excluded = mini_tiers.hierarchy
        for origin in mini_graph.nodes():
            if origin in excluded:
                continue
            state = propagate(mini_graph, Seed(asn=origin), excluded=excluded)
            assert (
                reachable_set(mini_graph, origin, excluded)
                == state.reachable_ases()
            )


class TestConeEngine:
    def test_cone_masks_match_direct_cones(self, mini_graph):
        engine = ConeEngine(mini_graph)
        from repro.core import customer_cone

        for asn in mini_graph.nodes():
            direct = customer_cone(mini_graph, asn)
            assert engine.cone_size(asn) == len(direct)

    def test_restricted_cones_exclude_hierarchy(self, mini_graph, mini_tiers):
        engine = ConeEngine(mini_graph, excluded=mini_tiers.hierarchy)
        # AS1's cone is gone from the index entirely
        assert T1A not in engine.bit_index
        # the cloud's restricted cone is just itself
        assert engine.cone_size(CLOUD) == 0

    def test_provider_free_count_matches_exact(self, mini_graph, mini_tiers):
        engine = ConeEngine(mini_graph, excluded=mini_tiers.hierarchy)
        for origin in mini_graph.nodes():
            expected = hierarchy_free_reachability(
                mini_graph, origin, mini_tiers
            )
            assert engine.provider_free_count(origin) == expected

    def test_provider_free_count_no_exclusion(self, mini_graph):
        engine = ConeEngine(mini_graph)
        for origin in mini_graph.nodes():
            assert engine.provider_free_count(origin) == (
                provider_free_reachability(mini_graph, origin)
            )

    def test_cycle_detection(self):
        from repro.topology import ASGraph

        g = ASGraph()
        g.add_p2c(1, 2)
        g.add_p2c(2, 3)
        g.add_p2c(3, 1)
        with pytest.raises(ValueError, match="cycle"):
            ConeEngine(g)


class TestRandomizedAgreement:
    """The three reachability implementations agree on random topologies."""

    @pytest.mark.parametrize("seed", range(5))
    def test_bfs_vs_engine_vs_propagation(self, seed):
        rng = random.Random(seed)
        graph = random_internet(rng)
        tier1 = frozenset(a for a in graph if not graph.providers(a))
        engine = ConeEngine(graph, excluded=tier1)
        for origin in list(graph.nodes())[::3]:
            if origin in tier1:
                continue
            excluded = (tier1 | graph.providers(origin)) - {origin}
            exact = reachable_set(graph, origin, excluded)
            state = propagate(graph, Seed(asn=origin), excluded=excluded)
            assert exact == state.reachable_ases()
            assert engine.provider_free_count(origin) == len(exact)
