"""Multi-process serving: SO_REUSEPORT workers under the supervisor.

Correctness first: a burst of concurrent queries spread over >= 2 worker
processes must return **bit-identical** answers (every worker mmaps the
same content-addressed corpus), a SIGKILLed worker must be replaced by
the supervisor with the service still answering, and shard
compaction/GC must refuse to touch a corpus any live worker has leased.
Throughput comparisons live in ``make bench-serve``; here only behavior
is asserted, so everything runs on a 1-CPU container too.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import threading
import time

import pytest

from .conftest import netgen_graph, sample_origins
from repro.bgpsim.cache import RoutingStateCache
from repro.bgpsim.shards import (
    ShardError,
    ShardStore,
    gc_corpora,
    graph_digest,
    live_leases,
    precompute_metric_shards,
    precompute_shards,
)
from repro.core.hegemony import local_hegemony
from repro.core.reliance import reliance_from_state
from repro.serve import ServiceSpec, WorkerSupervisor

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    graph = netgen_graph("tiny")
    root = tmp_path_factory.mktemp("worker-corpus")
    precompute_shards(graph, root, workers=1)
    precompute_metric_shards(graph, root)
    return graph, root


@pytest.fixture(scope="module")
def supervisor(corpus):
    graph, root = corpus
    spec = ServiceSpec(graph=graph, shards=str(root))
    with WorkerSupervisor(spec, workers=2) as sup:
        yield graph, root, sup


def get_json(port, path, timeout=60):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", path)
        return json.loads(conn.getresponse().read())
    finally:
        conn.close()


def wait_for_workers(sup, count, avoid=(), timeout=90):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        pids = sup.pids()
        if len(pids) >= count and not (set(pids) & set(avoid)):
            return pids
        time.sleep(0.1)
    raise AssertionError(f"workers never reached {count}: {sup.pids()}")


def test_concurrent_burst_is_bit_identical_across_workers(supervisor):
    graph, _root, sup = supervisor
    nodes = sorted(graph.nodes())
    origins = sample_origins(graph, 8, seed=41)
    cache = RoutingStateCache(graph)
    expected = {}
    for origin in origins:
        mass = reliance_from_state(cache.state_for(origin))
        target = nodes[-1] if nodes[-1] != origin else nodes[0]
        heg_target = next(
            t for t in sorted(graph.nodes(), reverse=True) if t != origin
        )
        expected[origin] = {
            "reliance": (target, mass.get(target, 0.0)),
            "hegemony": (
                heg_target,
                local_hegemony(graph, origin, heg_target, cache=cache),
            ),
        }

    answers = []
    pids = []
    failures = []

    def burst(origin):
        # separate connections per thread: the kernel's 4-tuple hash
        # spreads them across the two listening workers
        try:
            health = get_json(sup.port, "/health")
            pids.append(health["pid"])
            target, want = expected[origin]["reliance"]
            got = get_json(
                sup.port, f"/reliance?origin={origin}&target={target}"
            )
            answers.append((got["reliance"], want))
            heg_target, heg_want = expected[origin]["hegemony"]
            got = get_json(
                sup.port, f"/hegemony?origin={origin}&target={heg_target}"
            )
            answers.append((got["hegemony"], heg_want))
        except Exception as exc:  # pragma: no cover - surfaced below
            failures.append(f"origin {origin}: {exc!r}")

    threads = [
        threading.Thread(target=burst, args=(o,))
        for o in origins
        for _ in range(3)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not failures
    assert len(answers) == 2 * len(threads)
    for got, want in answers:
        assert float(got).hex() == float(want).hex()
    # every answer came from one of the supervisor's workers, and the
    # burst actually exercised more than one process
    assert set(pids) <= set(sup.pids()) | set(pids)
    assert len(set(pids)) >= 2, f"all {len(pids)} requests hit one worker"


def test_worker_crash_triggers_restart_and_service_answers(supervisor):
    graph, _root, sup = supervisor
    before = wait_for_workers(sup, 2)
    victim = before[0]
    os.kill(victim, signal.SIGKILL)
    after = wait_for_workers(sup, 2, avoid=[victim])
    assert victim not in after
    assert sup.restarts >= 1
    health = get_json(sup.port, "/health")
    assert health["status"] == "ok" and health["pid"] in after


def wait_for_leases(corpus_dir, count, timeout=90):
    # a freshly (re)spawned worker writes its lease while building the
    # service, which lags the process turning up in ``pids()``
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        leases = live_leases(corpus_dir)
        if len(leases) >= count:
            return leases
        time.sleep(0.1)
    raise AssertionError(
        f"never saw {count} live leases: {live_leases(corpus_dir)}"
    )


def test_live_worker_leases_block_compaction_and_gc(supervisor):
    graph, root, sup = supervisor
    wait_for_workers(sup, 2)
    corpus_dir = root / graph_digest(graph)[:16]
    wait_for_leases(corpus_dir, 2)  # one per worker

    # compaction refuses: the workers' mmaps alias the files it would
    # unlink
    store = ShardStore.open(corpus_dir, graph=graph)
    try:
        with pytest.raises(ShardError, match="live lease"):
            store.compact(shard_size=8)
    finally:
        store.close()

    # GC refuses for the same reason, even when no kept graph matches
    removed, _kept, refused = gc_corpora(root, keep_digests=[])
    assert corpus_dir in refused and corpus_dir not in removed
    assert corpus_dir.exists()


def test_graceful_shutdown_releases_leases(corpus):
    # the module supervisor may still be running with its own leases on
    # this corpus, so only the *new* supervisor's pids are asserted gone
    graph, root = corpus
    corpus_dir = root / graph_digest(graph)[:16]
    spec = ServiceSpec(graph=graph, shards=str(root))
    with WorkerSupervisor(spec, workers=2) as sup:
        pids = wait_for_workers(sup, 2)
        assert get_json(sup.port, "/health")["status"] == "ok"
    mine = {f"{pid}-" for pid in pids}

    def still_held():
        return [
            p
            for p in live_leases(corpus_dir)
            if any(p.name.startswith(prefix) for prefix in mine)
        ]

    deadline = time.monotonic() + 30
    while time.monotonic() < deadline and still_held():
        time.sleep(0.1)
    assert not still_held()


def test_spec_builds_from_graph_file(tmp_path, corpus):
    """Workers spawned from a file-backed spec (the CLI path) rebuild an
    equivalent service: same graph, shards attached, metric tier live."""
    graph, root = corpus
    from repro.topology import dump_graph

    topo = tmp_path / "topo.txt"
    dump_graph(graph, topo, serial=2)
    spec = ServiceSpec(graph_file=str(topo), shards=str(root))
    service = spec.build()
    try:
        assert len(service.graph) == len(graph)
        assert service.metrics is not None
        nodes = sorted(graph.nodes())
        _s, got = service.answer(
            "/reliance", {"origin": str(nodes[0]), "target": str(nodes[-1])}
        )
        cache = RoutingStateCache(graph)
        want = reliance_from_state(cache.state_for(nodes[0])).get(
            nodes[-1], 0.0
        )
        assert float(got["reliance"]).hex() == float(want).hex()
        assert service.metric_hits == 1
    finally:
        service.cache.shards.close()
