"""Unit tests for the reliance metric (§7)."""

import pytest

from repro.bgpsim import Seed, propagate
from repro.core import (
    hierarchy_free_reliance,
    path_counts,
    reliance,
    reliance_from_state,
    reliance_histogram,
    tier1_free_reliance,
    top_reliance,
)
from repro.topology import ASGraph, TierAssignment

from .conftest import CLOUD, E1, E2, E4, T2A


def build_fig5() -> ASGraph:
    """The paper's Fig. 5 example: t reaches o via x(u|v) and y(w)."""
    o, u, v, w, x, y, t = 1, 2, 3, 4, 5, 6, 7
    g = ASGraph()
    # o's providers u, v, w; x buys from u and v; y buys from w;
    # t buys from x and y.  All path lengths to o are then equal (2 hops to
    # x/y, 3 to t), giving t three tied best paths.
    g.add_p2c(u, o)
    g.add_p2c(v, o)
    g.add_p2c(w, o)
    g.add_p2c(x, u)
    g.add_p2c(x, v)
    g.add_p2c(y, w)
    g.add_p2c(t, x)
    g.add_p2c(t, y)
    return g


class TestFig5Example:
    def test_t_has_three_best_paths(self):
        g = build_fig5()
        state = propagate(g, Seed(asn=1))
        assert state.count_best_paths(7) == 3
        assert set(state.enumerate_best_paths(7)) == {
            (7, 5, 2, 1),
            (7, 5, 3, 1),
            (7, 6, 4, 1),
        }

    def test_reliance_restricted_to_t(self):
        # The paper computes the example's reliance with t as the only
        # receiving network: rely(o,x)=2/3, u=v=w=y=1/3, rely(o,t)=1.
        g = build_fig5()
        state = propagate(g, Seed(asn=1))
        rely = reliance_from_state(state, receivers=[7], exact=True)
        assert rely[5] == pytest.approx(2 / 3)
        assert rely[2] == pytest.approx(1 / 3)
        assert rely[3] == pytest.approx(1 / 3)
        assert rely[4] == pytest.approx(1 / 3)
        assert rely[6] == pytest.approx(1 / 3)
        assert rely[7] == pytest.approx(1.0)

    def test_exact_and_float_agree(self):
        g = build_fig5()
        state = propagate(g, Seed(asn=1))
        exact = reliance_from_state(state, exact=True)
        approx = reliance_from_state(state, exact=False)
        assert set(exact) == set(approx)
        for asn in exact:
            assert approx[asn] == pytest.approx(exact[asn])


class TestRelianceProperties:
    def test_every_receiver_relies_on_itself(self, mini_graph):
        rely = reliance(mini_graph, CLOUD)
        for asn in mini_graph.nodes():
            if asn != CLOUD:
                assert rely[asn] >= 1.0

    def test_total_mass_conserved(self, mini_graph):
        # Summing each receiver's path-membership fractions over first-hop
        # neighbors of the origin accounts for every receiver exactly once.
        rely = reliance(mini_graph, CLOUD)
        state = propagate(mini_graph, Seed(asn=CLOUD))
        first_hops = {
            asn
            for asn, route in state.routes.items()
            if route.parents == {CLOUD}
        }
        receivers = len(mini_graph) - 1
        assert sum(rely[h] for h in first_hops) == pytest.approx(receivers)

    def test_hierarchy_free_reliance_mini(self, mini):
        graph, tiers = mini
        rely = hierarchy_free_reliance(graph, CLOUD, tiers, exact=True)
        # Routed: E1 (peer), E2 (peer), E4 (via E1).
        assert rely == {E1: 2.0, E2: 1.0, E4: 1.0}

    def test_tier1_free_reliance_includes_tier2(self, mini):
        graph, tiers = mini
        rely = tier1_free_reliance(graph, CLOUD, tiers)
        assert rely[12] > 1.0  # AS12 carries AS301/AS202's only paths? E2
        # peers directly with the cloud, so only AS301 transits AS12.
        assert rely[12] == pytest.approx(2.0)

    def test_path_counts(self, mini_graph):
        state = propagate(mini_graph, Seed(asn=CLOUD))
        counts = path_counts(state)
        assert counts[CLOUD] == 1
        assert counts[T2A] == 1
        assert all(v >= 1 for v in counts.values())


class TestHelpers:
    def test_top_reliance(self):
        values = {1: 5.0, 2: 9.5, 3: 9.5, 4: 0.5}
        assert top_reliance(values, 2) == [(2, 9.5), (3, 9.5)]

    def test_reliance_histogram_bins(self):
        values = {1: 1.0, 2: 24.9, 3: 25.0, 4: 49.0, 5: 600.0}
        hist = reliance_histogram(values, bin_width=25)
        assert hist == {0: 2, 25: 2, 600: 1}

    def test_reliance_histogram_rejects_bad_width(self):
        with pytest.raises(ValueError):
            reliance_histogram({1: 1.0}, bin_width=0)
