"""Streaming-sweep conformance: O(batch) aggregation must be invisible.

The streaming tier (``states_for_many(stream=True)`` and the ``stream``
knob on the experiment aggregations) exists purely to bound memory at
paper scale — every output must stay bit-identical to the eager path.
This harness pins that equivalence across netgen seeds and profile
sizes, the knob resolution semantics, and the edge cases where a
streaming generator's laziness could leak state: empty sweeps, windows
wider than the origin set, duplicated origins, abandonment mid-sweep.

``REPRO_STREAM_PROFILES`` selects the profile sizes (comma-separated);
CI's streaming leg sets it to exercise the ``mid`` profile.
"""

from __future__ import annotations

import gc
import os
import random
import tracemalloc

import pytest

from .conftest import assert_states_equal, netgen_graph, sample_origins
from repro.bgpsim import (
    DEFAULT_STREAM_THRESHOLD,
    RoutingStateCache,
    resolve_stream,
)
from repro.core.hegemony import global_hegemony
from repro.core.leaks import average_resilience_curve
from repro.core.pathlen import fig13_bars_sweep
from repro.core.reliance import (
    hierarchy_free_reliance_summaries,
    reliance_summary_sweep,
)

PROFILES = tuple(
    p.strip()
    for p in os.environ.get("REPRO_STREAM_PROFILES", "tiny,small").split(",")
    if p.strip()
)
SEEDS = (20200901, 7, 1234)


def _scenario(profile_name: str, seed: int = 20200901):
    from repro.netgen import build_scenario, profile

    return build_scenario(profile(profile_name, seed=seed))


@pytest.fixture(scope="module")
def scenario():
    """The largest requested profile drives the consumer-level checks."""
    return _scenario(PROFILES[-1])


# ---------------------------------------------------------------------------
# knob resolution
# ---------------------------------------------------------------------------


class TestResolveStream:
    def test_explicit_bool_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM", "on")
        assert resolve_stream(False, 10**6) is False
        monkeypatch.setenv("REPRO_STREAM", "off")
        assert resolve_stream(True, 1) is True

    @pytest.mark.parametrize("knob", ["on", "1", "true", "yes", "ON", " On "])
    def test_true_spellings(self, knob):
        assert resolve_stream(knob) is True

    @pytest.mark.parametrize("knob", ["off", "0", "false", "no", "OFF"])
    def test_false_spellings(self, knob):
        assert resolve_stream(knob, 10**6) is False

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM", "1")
        assert resolve_stream(None) is True
        monkeypatch.setenv("REPRO_STREAM", "0")
        assert resolve_stream(None, 10**6) is False

    def test_auto_threshold(self, monkeypatch):
        monkeypatch.delenv("REPRO_STREAM", raising=False)
        assert resolve_stream(None, DEFAULT_STREAM_THRESHOLD - 1) is False
        assert resolve_stream(None, DEFAULT_STREAM_THRESHOLD) is True
        monkeypatch.setenv("REPRO_STREAM_THRESHOLD", "100")
        assert resolve_stream("auto", 100) is True
        assert resolve_stream("auto", 99) is False

    def test_auto_without_size_stays_eager(self, monkeypatch):
        monkeypatch.delenv("REPRO_STREAM", raising=False)
        assert resolve_stream(None, None) is False

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError):
            resolve_stream("sometimes")


# ---------------------------------------------------------------------------
# cache-level equivalence: 3 seeds x the requested profile sizes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("profile_name", PROFILES)
@pytest.mark.parametrize("seed", SEEDS)
def test_stream_matches_eager_states(profile_name, seed):
    graph = netgen_graph(profile_name, seed=seed)
    origins = sample_origins(graph, 24, seed=seed)
    eager = dict(
        RoutingStateCache(graph, engine="compiled", batch=8).states_for_many(
            origins, stream=False
        )
    )
    cache = RoutingStateCache(graph, engine="compiled", batch=8)
    streamed = list(cache.states_for_many(origins, stream=True))
    assert [o for o, _ in streamed] == origins
    for origin, state in streamed:
        assert_states_equal(
            state,
            eager[origin],
            f"({profile_name} seed={seed} origin={origin})",
        )
    # stream mode must not have retained the sweep
    assert len(cache) == 0


# ---------------------------------------------------------------------------
# edge cases
# ---------------------------------------------------------------------------


class TestStreamEdgeCases:
    def test_empty_origin_iterable(self):
        graph = netgen_graph("tiny")
        cache = RoutingStateCache(graph, engine="compiled")
        assert list(cache.states_for_many(iter(()), stream=True)) == []
        stats = cache.stats()
        assert (stats.misses, stats.prefetch_chunks) == (0, 0)

    def test_batch_wider_than_origin_set(self):
        graph = netgen_graph("tiny")
        origins = sample_origins(graph, 5)
        cache = RoutingStateCache(graph, engine="compiled")
        pairs = list(cache.states_for_many(origins, batch=64, stream=True))
        assert [o for o, _ in pairs] == origins
        assert cache.stats().prefetch_chunks == 1
        reference = RoutingStateCache(graph)
        for origin, state in pairs:
            assert_states_equal(
                state, reference.state_for(origin), f"(origin={origin})"
            )

    def test_duplicate_origins_share_one_view(self):
        graph = netgen_graph("tiny")
        a, b = sample_origins(graph, 2)
        cache = RoutingStateCache(graph, engine="compiled")
        pairs = list(
            cache.states_for_many([a, a, b, a], batch=8, stream=True)
        )
        assert [o for o, _ in pairs] == [a, a, b, a]
        assert pairs[0][1] is pairs[1][1] is pairs[3][1]
        # the duplicated origin was propagated once, not three times
        assert cache.stats().misses == 2

    def test_abandoned_generator_releases_views(self):
        graph = netgen_graph("tiny")
        graph.compile()
        origins = sorted(graph.nodes())
        cache = RoutingStateCache(graph)
        # warm-up: one-time allocator/interpreter costs stay unmeasured
        for _origin, _state in cache.states_for_many(
            origins[:8], batch=8, stream=True
        ):
            pass
        gc.collect()
        tracemalloc.start()
        try:
            sweep = cache.states_for_many(origins, batch=8, stream=True)
            for _ in range(3):
                next(sweep)
            sweep.close()
            del sweep
            gc.collect()
            current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # abandoning mid-window must drop the window: the residual live
        # allocations are a small fraction of the in-flight peak, and the
        # cache kept nothing
        assert len(cache) == 0
        assert peak > 0 and current < peak / 2, (current, peak)

    def test_excluded_sweep_bypasses_tiers(self):
        graph = netgen_graph("tiny")
        origins = sample_origins(graph, 6)
        excluded = frozenset(sample_origins(graph, 40)[-2:]) - set(origins)
        cache = RoutingStateCache(graph, engine="compiled")
        cache.prefetch(origins)  # warm LRU with the *plain* states
        before = cache.stats()
        streamed = list(
            cache.states_for_many(
                origins, batch=4, stream=True, excluded=excluded
            )
        )
        after = cache.stats()
        # subgraph states must never be served from (or inserted into)
        # the plain-origin tiers
        assert after.hits == before.hits
        assert len(cache) == len(origins)  # only the prefetched states
        eager = dict(
            RoutingStateCache(graph, engine="compiled").states_for_many(
                origins, batch=4, stream=False, excluded=excluded
            )
        )
        for origin, state in streamed:
            assert_states_equal(
                state, eager[origin], f"(excluded origin={origin})"
            )


# ---------------------------------------------------------------------------
# consumer-level equivalence (the experiment aggregations)
# ---------------------------------------------------------------------------


class TestConsumersStreamEqualsEager:
    def test_reliance_summary_sweep_common_excluded(self, scenario):
        graph = scenario.graph
        origins = sample_origins(graph, 16, seed=2)
        common = scenario.tiers.hierarchy
        items = [(o, common - {o}) for o in origins]
        eager = reliance_summary_sweep(
            graph, items, engine="compiled", batch=8, stream=False
        )
        streamed = reliance_summary_sweep(
            graph, items, engine="compiled", batch=8, stream="on"
        )
        assert streamed == eager

    def test_hierarchy_free_summaries(self, scenario):
        graph = scenario.graph
        origins = sample_origins(graph, 8, seed=3)
        eager = hierarchy_free_reliance_summaries(
            graph, origins, scenario.tiers, engine="compiled", stream=False
        )
        streamed = hierarchy_free_reliance_summaries(
            graph, origins, scenario.tiers, engine="compiled", stream="on"
        )
        assert streamed == eager

    def test_global_hegemony(self, scenario):
        graph = scenario.graph
        targets = sample_origins(graph, 6, seed=4)
        origins = sample_origins(graph, 20, seed=5)
        eager = global_hegemony(
            graph,
            targets,
            origins=origins,
            engine="compiled",
            batch=8,
            stream=False,
        )
        streamed = global_hegemony(
            graph,
            targets,
            origins=origins,
            engine="compiled",
            batch=8,
            stream="on",
        )
        assert streamed == eager

    def test_global_hegemony_empty_origins(self, scenario):
        graph = scenario.graph
        targets = sample_origins(graph, 4, seed=6)
        eager = global_hegemony(
            graph, targets, origins=[], engine="compiled", stream=False
        )
        streamed = global_hegemony(
            graph, targets, origins=[], engine="compiled", stream="on"
        )
        assert streamed == eager

    def test_fig13_bars_sweep(self, scenario):
        graph = scenario.graph
        origins = sample_origins(graph, 12, seed=7)
        eager = fig13_bars_sweep(
            graph,
            origins,
            scenario.users,
            engine="compiled",
            batch=8,
            stream=False,
        )
        streamed = fig13_bars_sweep(
            graph,
            origins,
            scenario.users,
            engine="compiled",
            batch=8,
            stream="on",
        )
        assert streamed == eager

    def test_fig13_empty_origins(self, scenario):
        assert (
            fig13_bars_sweep(
                scenario.graph, [], scenario.users, stream="on"
            )
            == []
        )

    def test_reliance_empty_items(self, scenario):
        assert (
            reliance_summary_sweep(scenario.graph, [], stream="on") == []
        )

    def test_average_resilience_curve(self, scenario):
        graph = scenario.graph
        eager = average_resilience_curve(
            graph,
            random.Random(11),
            origins=6,
            leakers_per_origin=4,
            engine="incremental",
            batch=4,
            stream=False,
        )
        streamed = average_resilience_curve(
            graph,
            random.Random(11),
            origins=6,
            leakers_per_origin=4,
            engine="incremental",
            batch=4,
            stream="on",
        )
        assert streamed == eager
