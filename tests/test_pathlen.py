"""Unit tests for path-length distributions (Appendix E / Fig. 13)."""

import pytest

from repro.core import (
    PathLengthMix,
    fig13_bars,
    normalize_mix,
    path_length_mix,
    path_length_weights,
)

from .conftest import CLOUD, CONTENT, E2, E3, E4, T1A, T2A


class TestWeights:
    def test_unweighted_bins_from_cloud(self, mini_graph):
        totals = path_length_weights(mini_graph, CLOUD)
        # 1 hop: AS11, AS12, AS2, AS201, AS202 (direct neighbors)
        # 2 hops: AS1, AS301, AS204; 3+: AS203
        assert totals == {"1": 5.0, "2": 3.0, "3+": 1.0}

    def test_restricted_to_subset(self, mini_graph):
        totals = path_length_weights(
            mini_graph, CLOUD, restrict_to={E2, E3, CONTENT}
        )
        assert totals == {"1": 1.0, "2": 1.0, "3+": 1.0}

    def test_user_weighted(self, mini_graph):
        users = {E2: 100, E3: 300, E4: 100}
        totals = path_length_weights(mini_graph, CLOUD, weights=users)
        assert totals == {"1": 100.0, "2": 100.0, "3+": 300.0}

    def test_excluded_nodes_shift_lengths(self, mini_graph):
        totals = path_length_weights(mini_graph, CLOUD, excluded={T2A})
        # AS11 gone: its customers/cone must be reached other ways.
        assert totals["1"] == 4.0  # AS12, AS2, AS201, AS202


class TestMix:
    def test_mix_fractions(self, mini_graph):
        mix = path_length_mix(mini_graph, CLOUD)
        assert mix.one_hop == pytest.approx(5 / 9)
        assert mix.two_hop == pytest.approx(3 / 9)
        assert mix.three_plus == pytest.approx(1 / 9)
        assert mix.as_dict()["1"] == mix.one_hop

    def test_empty_mix(self):
        assert normalize_mix({}) == PathLengthMix(0.0, 0.0, 0.0)

    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            PathLengthMix(0.9, 0.4, 0.1)

    def test_fig13_bars(self, mini_graph):
        users = {E2: 10, E3: 30}
        bars = fig13_bars(mini_graph, CLOUD, users)
        assert set(bars) == {"ases", "eyeball_ases", "population"}
        assert bars["eyeball_ases"].one_hop == pytest.approx(1 / 2)
        assert bars["population"].three_plus == pytest.approx(3 / 4)
