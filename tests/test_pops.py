"""Unit tests for the PoP/rDNS/alias/consolidation pipeline (§4.2)."""

import random

import pytest

from repro.mapping import peeringdb_from_scenario
from repro.netgen import build_scenario, tiny
from repro.pops import (
    ConventionLearner,
    DataSources,
    NamingConvention,
    ProbeSimulator,
    alias_groups_to_hostnames,
    collect_rdns,
    consolidate_provider,
    consolidate_scenario,
    convention_for,
    extract_codes,
    extract_with_regex,
    generate_footprint,
    monotonic_bounds_test,
    pop_rdns_confirmation,
    regex_for_convention,
    resolve_aliases,
    sources_for,
)


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(tiny())


@pytest.fixture(scope="module")
def he_footprint(scenario):
    return generate_footprint(
        scenario, "Hurricane Electric", random.Random(3)
    )


class TestConventions:
    def test_known_provider_conventions(self):
        ntt = convention_for("NTT")
        name = ntt.hostname("lon", 20, 3, site=12)
        assert name == "ae-3.r20.lon12.gin.ntt.net"

    def test_default_convention_for_unknown(self):
        assert convention_for("SomeISP") is convention_for("OtherISP")

    def test_amazon_has_no_rdns(self):
        assert convention_for("Amazon").pop_coverage == 0.0
        assert not sources_for("Amazon").rdns

    def test_att_has_no_peeringdb(self):
        assert not sources_for("AT&T").peeringdb
        assert sources_for("AT&T").rdns


class TestFootprintGeneration:
    def test_footprint_covers_pops(self, scenario, he_footprint):
        expected = {c.code for c in scenario.pop_footprints["Hurricane Electric"]}
        assert he_footprint.city_codes() == expected
        assert he_footprint.routers

    def test_interfaces_in_provider_prefix(self, scenario, he_footprint):
        prefix = scenario.prefixes[he_footprint.asn]
        for router in he_footprint.routers:
            for ip in router.interfaces:
                assert ip in prefix

    def test_amazon_generates_no_hostnames(self, scenario):
        fp = generate_footprint(scenario, "Amazon", random.Random(3))
        assert fp.hostname_count() == 0
        confirmed, total = pop_rdns_confirmation(fp)
        assert confirmed == 0 and total == len(fp.pops)

    def test_unknown_provider_raises(self, scenario):
        with pytest.raises(KeyError):
            generate_footprint(scenario, "Nonexistent", random.Random(0))

    def test_rdns_collection_round_trip(self, he_footprint):
        dataset = collect_rdns([he_footprint])
        named = [r for r in he_footprint.routers if r.hostname]
        assert len(dataset) == sum(len(r.interfaces) for r in named)
        for router in named:
            for ip in router.interfaces:
                assert dataset.lookup(ip) == router.hostname
        assert dataset.lookup("203.0.113.1") is None


class TestHoiho:
    def test_manual_regex_extracts_code(self):
        pattern = regex_for_convention(convention_for("NTT"))
        assert extract_with_regex("ae-3.r20.lon12.gin.ntt.net", pattern) == "lon"
        assert extract_with_regex("garbage.example.com", pattern) is None
        # a syntactically valid name with an unknown code is rejected
        assert extract_with_regex("ae-3.r20.zzz12.gin.ntt.net", pattern) is None

    def test_regex_for_empty_template(self):
        assert regex_for_convention(NamingConvention("x", "", 0.0)) is None

    def test_learner_agrees_with_manual(self, he_footprint):
        hostnames = [r.hostname for r in he_footprint.routers if r.hostname]
        learned = ConventionLearner().learn(hostnames)
        manual = regex_for_convention(convention_for("Hurricane Electric"))
        assert learned is not None
        for hostname in hostnames:
            assert learned.extract(hostname) == extract_with_regex(
                hostname, manual
            )

    def test_learner_needs_support(self):
        learner = ConventionLearner(min_support=8)
        few = [f"cr1.lon{i}.example.net" for i in range(3)]
        assert learner.learn(few) is None

    def test_learner_needs_code_diversity(self):
        # constant token: looks like a code but extracts a single city
        learner = ConventionLearner(min_support=2)
        names = [f"r{i}.lon.fixed.example.net" for i in range(10)]
        assert learner.learn(names) is None

    def test_extract_codes_union(self, he_footprint):
        hostnames = [r.hostname for r in he_footprint.routers if r.hostname]
        manual = regex_for_convention(convention_for("Hurricane Electric"))
        codes = extract_codes(hostnames, manual_pattern=manual)
        named_cities = {
            r.city.code for r in he_footprint.routers if r.hostname
        }
        assert codes == named_cities


class TestAliasResolution:
    def test_probe_simulator_counters_shared(self, he_footprint):
        prober = ProbeSimulator(he_footprint.routers, seed=0)
        router = next(r for r in he_footprint.routers if len(r.interfaces) > 1)
        a, b = router.interfaces[0], router.interfaces[1]
        assert prober.probe(a, 1.0) is not None
        assert monotonic_bounds_test(prober, a, b, t0=5.0)

    def test_different_routers_fail_mbt_mostly(self, he_footprint):
        prober = ProbeSimulator(he_footprint.routers, seed=0)
        routers = he_footprint.routers[:8]
        failures = 0
        pairs = 0
        for i, r1 in enumerate(routers):
            for r2 in routers[i + 1 :]:
                pairs += 1
                if not monotonic_bounds_test(
                    prober, r1.interfaces[0], r2.interfaces[0], t0=3.0
                ):
                    failures += 1
        assert failures > pairs * 0.6

    def test_resolution_recovers_ground_truth(self, he_footprint):
        routers = he_footprint.routers[:12]
        prober = ProbeSimulator(routers, seed=1)
        ips = [ip for r in routers for ip in r.interfaces]
        groups = {frozenset(g) for g in resolve_aliases(prober, ips, seed=2)}
        truth = {frozenset(r.interfaces) for r in routers}
        # velocity bucketing + MBT recovers nearly all routers exactly
        assert len(groups & truth) >= len(truth) - 1

    def test_unresponsive_addresses_ignored(self, he_footprint):
        prober = ProbeSimulator(he_footprint.routers[:3], seed=1)
        import ipaddress

        stranger = ipaddress.IPv4Address("203.0.113.7")
        assert not prober.responds(stranger)
        groups = resolve_aliases(prober, [stranger], seed=0)
        assert groups == []

    def test_groups_to_hostnames(self, he_footprint):
        routers = he_footprint.routers[:6]
        dataset = collect_rdns([he_footprint])
        groups = [frozenset(r.interfaces) for r in routers]
        hostname_groups = alias_groups_to_hostnames(groups, dataset.lookup)
        named = [r for r in routers if r.hostname]
        assert len(hostname_groups) == len(named)


class TestConsolidation:
    def test_consolidated_map_unions_sources(self, scenario, he_footprint):
        pdb = peeringdb_from_scenario(scenario)
        dataset = collect_rdns([he_footprint])
        cmap = consolidate_provider(
            he_footprint, pdb, dataset, random.Random(0)
        )
        assert cmap.from_rdns <= he_footprint.city_codes()
        assert cmap.cities <= he_footprint.city_codes() | cmap.from_peeringdb
        assert cmap.from_map  # map source is present for HE
        assert 0.0 <= cmap.rdns_confirmed_fraction <= 1.0

    def test_scenario_consolidation_table3(self, scenario):
        pdb = peeringdb_from_scenario(scenario)
        result = consolidate_scenario(
            scenario, pdb, providers=["Amazon", "Google", "Hurricane Electric"]
        )
        rows = {row.provider: row for row in result.table3()}
        assert rows["Amazon"].rdns_percent == 0.0
        assert rows["Amazon"].hostnames == 0
        assert rows["Hurricane Electric"].rdns_percent > 90.0
        assert rows["Google"].graph_pops > 0

    def test_sources_respected(self, scenario):
        fp = generate_footprint(scenario, "Level 3", random.Random(0))
        object.__setattr__  # silence lint; DataSources is frozen
        fp.sources = DataSources(network_map=False, looking_glass=False)
        pdb = peeringdb_from_scenario(scenario)
        cmap = consolidate_provider(
            fp, pdb, collect_rdns([fp]), random.Random(0)
        )
        assert not cmap.from_map
        assert not cmap.from_looking_glass
