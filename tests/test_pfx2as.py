"""Unit tests for the RouteViews-style prefix-to-AS dataset."""

import ipaddress
import random

import pytest

from repro.collectors import collect_ribs
from repro.mapping import (
    Pfx2AsDataset,
    Pfx2AsEntry,
    Pfx2AsFormatError,
    dump_pfx2as,
    dumps_pfx2as,
    load_pfx2as,
    parse_pfx2as,
    pfx2as_from_dump,
)
from repro.netgen import build_scenario, tiny


def net(s: str) -> ipaddress.IPv4Network:
    return ipaddress.IPv4Network(s)


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(tiny())


@pytest.fixture(scope="module")
def dataset(scenario):
    dump = collect_ribs(
        scenario.graph, scenario.monitors, scenario.prefixes,
        rng=random.Random(3),
    )
    return pfx2as_from_dump(dump)


class TestDerivation:
    def test_covers_routed_origins(self, scenario, dataset):
        # every AS visible to at least one monitor appears as an origin
        assert len(dataset.origins()) >= 0.95 * len(scenario.graph)

    def test_prefixes_match_scenario(self, scenario, dataset):
        for asn in sorted(dataset.origins())[:30]:
            assert scenario.prefixes[asn] in dataset.prefixes_of(asn)

    def test_one_prefix_per_as_selection(self, scenario, dataset):
        targets = dataset.one_prefix_per_as()
        assert set(targets) == dataset.origins()
        for asn, prefix in list(targets.items())[:20]:
            assert prefix == scenario.prefixes[asn]

    def test_no_moas_in_clean_scenario(self, dataset):
        assert dataset.moas_prefixes() == []


class TestFormat:
    def test_round_trip(self, dataset, tmp_path):
        path = tmp_path / "routeviews-rv2.pfx2as"
        dump_pfx2as(dataset, path)
        again = load_pfx2as(path)
        assert len(again) == len(dataset)
        assert again.origins() == dataset.origins()
        assert again.one_prefix_per_as() == dataset.one_prefix_per_as()

    def test_moas_serialization(self):
        dataset = Pfx2AsDataset(
            [Pfx2AsEntry(prefix=net("10.0.0.0/16"), origins=(7, 9))]
        )
        text = dumps_pfx2as(dataset)
        assert text == "10.0.0.0\t16\t7_9\n"
        again = parse_pfx2as(text)
        assert again.entries[0].is_moas
        assert again.prefixes_of(7) == again.prefixes_of(9)

    def test_as_set_parsing(self):
        dataset = parse_pfx2as("10.0.0.0\t24\t7_9,11\n")
        assert dataset.entries[0].origins == (7, 9, 11)

    def test_space_separated_accepted(self):
        dataset = parse_pfx2as("10.0.0.0 24 7\n")
        assert dataset.entries[0].origins == (7,)

    def test_comments_and_blanks_skipped(self):
        assert len(parse_pfx2as("# header\n\n10.0.0.0\t24\t7\n")) == 1

    def test_malformed_rejected(self):
        with pytest.raises(Pfx2AsFormatError):
            parse_pfx2as("10.0.0.0\t24\n")
        with pytest.raises(Pfx2AsFormatError):
            parse_pfx2as("10.0.0.0\tx\t7\n")
        with pytest.raises(Pfx2AsFormatError):
            parse_pfx2as("10.0.0.0\t24\tx\n")

    def test_empty(self):
        assert dumps_pfx2as(Pfx2AsDataset()) == ""
        assert len(parse_pfx2as("")) == 0
