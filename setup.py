"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e . --no-build-isolation`` (and ``python setup.py develop``)
work offline with older setuptools that lack PEP 660 editable-wheel support.
"""

from setuptools import setup

setup()
