"""E16 — Appendix D: active geolocation of router interfaces."""

from repro.experiments import appendixD_geolocation

from benchmarks.conftest import run_once


def test_bench_appendixD_geolocation(benchmark, ctx2020):
    result = run_once(benchmark, appendixD_geolocation.run, ctx2020)

    assert result.rows
    for row in result.rows:
        assert row.interfaces > 0
        assert 0.0 <= row.coverage <= 1.0
        # the 1 ms RTT bound is conservative: whenever the technique
        # commits to a city, it is essentially always the right one
        if row.coverage > 0:
            assert row.accuracy > 0.95

    print()
    print(result.render())
