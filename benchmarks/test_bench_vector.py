"""Benchmark — vectorized numpy kernels vs the pure-Python compiled path.

Two legs run the same small-profile workload (32 sampled origins:
compiled propagation, tied-best-path counts, reliance, local hegemony
toward the 24 highest-degree targets, and the path-length histogram):

* ``pure`` — ``REPRO_VECTOR=off``: the interpreted compiled kernels;
* ``vector`` — ``REPRO_VECTOR=on``: the numpy frontier sweeps of
  :mod:`repro.bgpsim.vectorized` dispatched inside the same entry points.

Correctness is asserted first and bitwise: the two legs must produce
identical routing arrays (route class / length / parent-pool sets),
identical count/reliance/histogram dicts, and hegemony rows whose float
bytes match exactly (``array.tobytes()`` equality) — the vectorized
kernels replay the pure kernels' accumulation order, so this is equality
of every bit, not approximate agreement.  The record then asserts the
vectorized propagation + metric layer is ≥3× faster end to end.

Run it through ``make bench-vector``; the record lands in
``benchmarks/bench_vector.json``.  Skipped when numpy is missing (the
``[perf]`` extra is optional by design).
"""

from __future__ import annotations

import os
import random
import time
from pathlib import Path

import pytest

from benchmarks.conftest import write_bench_json
from repro.bgpsim import Seed, numpy_available, propagate
from repro.bgpsim import metrics_kernel as mk
from repro.core.hegemony import _hegemony_values

BENCH_JSON = Path(__file__).resolve().parent / "bench_vector.json"
#: best-of rounds per timed leg (tames scheduler noise on small hosts)
ROUNDS = 5
N_ORIGINS = 32
N_TARGETS = 24


def _workload(graph):
    nodes = sorted(graph.nodes())
    origins = random.Random(7).sample(nodes, min(N_ORIGINS, len(nodes)))
    by_degree = sorted(
        nodes,
        key=lambda a: -(len(graph.customers(a)) + len(graph.peers(a))),
    )
    targets = tuple(by_degree[:N_TARGETS])
    return origins, targets


def _parent_sets(state):
    """Per-node parent-ASN frozensets (pool order is not the contract)."""
    head, pool_parent, pool_next, asns = (
        state._parent_head,
        state._pool_parent,
        state._pool_next,
        state._asns,
    )
    sets = []
    for i in range(len(asns)):
        h = head[i]
        parents = set()
        while h >= 0:
            parents.add(asns[pool_parent[h]])
            h = pool_next[h]
        sets.append(frozenset(parents))
    return sets


def _state_signature(state):
    return (
        bytes(state._route_class),
        state._length.tobytes(),
        tuple(sorted(state._routed)),  # discovery order is not the contract
        _parent_sets(state),
    )


def _sweep(graph, origins, targets):
    """One full pass: propagation + the four metric passes, staged."""
    stages = {}
    t0 = time.perf_counter()
    states = [
        propagate(graph, Seed(asn=o), engine="compiled") for o in origins
    ]
    stages["propagate"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    counts = [mk.path_counts_kernel(st) for st in states]
    stages["path_counts"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    reliance = [mk.reliance_kernel(st) for st in states]
    stages["reliance"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    hegemony = [
        _hegemony_values(st, o, targets)
        for st, o in zip(states, origins)
    ]
    stages["hegemony"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    histograms = [mk.length_histogram_kernel(st) for st in states]
    stages["length_histogram"] = time.perf_counter() - t0
    outputs = {
        "states": [_state_signature(st) for st in states],
        "counts": counts,
        "reliance": reliance,
        "hegemony": [row.tobytes() for row in hegemony],
        "histograms": histograms,
    }
    return stages, outputs


def _best_of(func, rounds=ROUNDS):
    """(best per-stage seconds, last outputs) over ``rounds`` runs."""
    best = None
    outputs = None
    for _ in range(rounds):
        stages, outputs = func()
        if best is None or sum(stages.values()) < sum(best.values()):
            best = stages
    return best, outputs


def _leg(mode, graph, origins, targets):
    previous = os.environ.get("REPRO_VECTOR")
    os.environ["REPRO_VECTOR"] = mode
    try:
        _sweep(graph, origins, targets)  # warm caches/imports
        return _best_of(lambda: _sweep(graph, origins, targets))
    finally:
        if previous is None:
            os.environ.pop("REPRO_VECTOR", None)
        else:
            os.environ["REPRO_VECTOR"] = previous


def test_bench_vectorized_kernels(benchmark, ctx2020):
    if not numpy_available():
        pytest.skip("numpy not installed; the [perf] extra is optional")
    graph = ctx2020.graph
    graph.compile()
    origins, targets = _workload(graph)

    pure_stages, pure_out = _leg("off", graph, origins, targets)
    vec_stages, vec_out = _leg("on", graph, origins, targets)
    benchmark.pedantic(
        lambda: _leg("on", graph, origins, targets)[0],
        rounds=1, iterations=1,
    )

    # correctness first, and bitwise: same routes, same floats
    assert pure_out["states"] == vec_out["states"], (
        "vectorized propagation diverged from the pure compiled kernel"
    )
    assert pure_out["counts"] == vec_out["counts"]
    assert pure_out["reliance"] == vec_out["reliance"]
    assert pure_out["hegemony"] == vec_out["hegemony"], (
        "hegemony float bytes diverged between the pure and numpy kernels"
    )
    assert pure_out["histograms"] == vec_out["histograms"]

    pure_total = sum(pure_stages.values())
    vec_total = sum(vec_stages.values())
    speedup = pure_total / vec_total
    record = {
        "workload": (
            f"{len(origins)} origins: compiled propagation + path counts "
            f"+ reliance + hegemony({len(targets)} targets) + histogram"
        ),
        "ases": len(graph),
        "rounds": ROUNDS,
        "pure_s": pure_stages,
        "vector_s": vec_stages,
        "pure_total_s": pure_total,
        "vector_total_s": vec_total,
        "speedup": speedup,
        "stage_speedups": {
            stage: pure_stages[stage] / vec_stages[stage]
            for stage in pure_stages
        },
        "outputs_bitwise_identical": True,
    }
    write_bench_json(BENCH_JSON, record, engine="compiled", workers=None)

    assert speedup >= 3.0, (
        f"vectorized kernels ({vec_total * 1e3:.1f} ms) are only "
        f"{speedup:.2f}x faster than the pure compiled path "
        f"({pure_total * 1e3:.1f} ms)"
    )
