"""Benchmark — event-delta timeline replay vs full recompute.

The tentpole claim of the dynamic-topology engine is that replaying an
event timeline (link failures, restorations, a leak, a hijack) under
``REPRO_ENGINE=incremental`` derives every post-event state as a
frontier-limited delta over the cached baselines instead of a full
Gao-Rexford propagation per (event, origin).  This benchmark replays the
same small-profile timeline under both engines via
:class:`~repro.experiments.timeline.ScenarioRunner`, asserts the metric
rows are *bitwise identical* — including a separate untimed replay with
reliance/hegemony targets, so every kernel the runner can emit is
covered — and records the comparison in ``benchmarks/bench_events.json``
(stamped with engine/workers/batch/cpu_count like every benchmark
record).

The timed sweeps emit reachability-only rows: per-row metric
post-processing costs the same on both paths, so timing it would
measure the metric kernels, not the event-delta engine under test.

Run it through ``make bench-events``.
"""

from __future__ import annotations

import time
from pathlib import Path

from benchmarks.conftest import write_bench_json
from repro.bgpsim.events import Hijack, LinkDown, LinkUp, RouteLeak
from repro.experiments.timeline import ScenarioRunner

BENCH_JSON = Path(__file__).resolve().parent / "bench_events.json"
ORIGIN_COUNT = 16
VICTIM_COUNT = 12


def _timeline(graph, origins):
    """Down/up pairs on stub provider links, plus one leak and one hijack.

    Stub link events have small disturbance regions — exactly the shape
    where the delta engine should win — while the seed events exercise
    the leak/hijack merge paths.
    """
    stubs = sorted(asn for asn in graph.nodes() if graph.is_stub(asn))
    victims = [s for s in stubs if s not in set(origins)][:VICTIM_COUNT]
    events = []
    for victim in victims:
        provider = min(graph.providers(victim))
        events.append(LinkDown(provider, victim))
        events.append(LinkUp(provider, victim, relationship="p2c"))
    events.append(RouteLeak(victims[0]))
    events.append(Hijack(victims[1]))
    return events


def _sweep(graph, origins, events, engine, targets=()):
    """One timeline replay on a private copy (the runner mutates it)."""
    runner = ScenarioRunner(
        graph.copy(), origins, targets=targets, engine=engine
    )
    return runner.run(list(events))


def _rows(result, with_metrics=False):
    return [
        (r.step, r.event, r.origin, r.reachable, r.captured)
        + ((r.reliance, r.hegemony) if with_metrics else ())
        for r in result.records
    ]


def test_bench_event_timeline_incremental_vs_full(benchmark, ctx2020):
    graph = ctx2020.graph
    stubs = sorted(asn for asn in graph.nodes() if graph.is_stub(asn))
    origins = stubs[:: max(1, len(stubs) // ORIGIN_COUNT)][:ORIGIN_COUNT]
    events = _timeline(graph, origins)

    started = time.perf_counter()
    full_result = _sweep(graph, origins, events, "compiled")
    full_s = time.perf_counter() - started

    started = time.perf_counter()
    incremental_result = benchmark.pedantic(
        _sweep,
        args=(graph, origins, events, "incremental"),
        rounds=1,
        iterations=1,
    )
    incremental_s = time.perf_counter() - started

    # correctness first: the timed rows must be bitwise identical
    assert _rows(incremental_result) == _rows(full_result), (
        "incremental timeline diverged from the full recompute"
    )

    # and so must the reliance/hegemony floats (untimed replay — the
    # metric kernels cost the same on both paths)
    target = origins[0]
    assert _rows(
        _sweep(graph, origins, events, "incremental", targets=(target,)),
        with_metrics=True,
    ) == _rows(
        _sweep(graph, origins, events, "compiled", targets=(target,)),
        with_metrics=True,
    ), "metric rows diverged between the engines"

    visited = [
        r.visited_fraction
        for r in incremental_result.records
        if r.step > 0 and r.visited_fraction
    ]
    assert visited, "no event took the delta path"
    speedup = full_s / incremental_s
    record = {
        "origins": len(origins),
        "events": len(events),
        "ases": len(graph),
        "full_s": full_s,
        "incremental_s": incremental_s,
        "speedup": speedup,
        "delta_path_rows": len(visited),
        "mean_visited_fraction": sum(visited) / len(visited),
        "max_visited_fraction": max(visited),
        "rows_identical": True,
        "metric_rows_identical": True,
    }
    write_bench_json(BENCH_JSON, record, engine="incremental", workers=None)

    assert speedup >= 2.0, (
        f"incremental timeline ({incremental_s:.3f}s) is only "
        f"{speedup:.2f}x faster than the full recompute ({full_s:.3f}s); "
        "event deltas should buy at least 2x on this sweep"
    )
