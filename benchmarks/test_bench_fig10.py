"""E8 — regenerate Fig. 10 (Google leak resilience, 2015 vs 2020)."""

from repro.experiments import fig7_10_leaks

from benchmarks.conftest import run_once


def test_bench_fig10_resilience_over_time(benchmark, ctx2020, ctx2015):
    result = run_once(
        benchmark, fig7_10_leaks.run_fig10, ctx2020, ctx2015,
        leaks_per_config=40,
    )

    assert result.curve_2015
    assert result.curve_2020
    for curve in (result.curve_2015, result.curve_2020):
        assert all(0.0 <= x <= 1.0 for x in curve)

    # paper shape: only a small change between the two topologies — Google
    # was already well peered in 2015; no order-of-magnitude swing
    mean_2015 = sum(result.curve_2015) / len(result.curve_2015)
    mean_2020 = sum(result.curve_2020) / len(result.curve_2020)
    assert abs(mean_2020 - mean_2015) < 0.25

    print()
    print(result.render())
