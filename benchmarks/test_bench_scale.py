"""Benchmark — scale sweep with per-stage wall time and memory peaks.

One row per netgen profile (``small`` ~700 ASes, ``mid`` ~2k, ``large``
~10k): wall time (best-of rounds) *and* tracemalloc / RSS high-water
marks for building + compiling the topology, the per-cloud compiled
propagation sweep, and the full Fig. 6/Table 2 hierarchy-free reliance
sweep.

The ``large`` row additionally runs the paper-scale streaming leg: a
256-origin Fig. 6 reliance sweep (one common hierarchy excluded set)
and a 256-origin hegemony sweep, eager vs ``stream=True``, asserting
the outputs bit-identical and the streamed peak at least
:data:`STREAM_MIN_RATIO` times below the eager peak — the whole point
of the O(batch) tier.  Set ``REPRO_FULL_PROFILE=1`` to append a
``full`` (~70k-AS) generation + structural-validation row.

Run it through ``make bench-scale``; the record lands in
``benchmarks/bench_scale.json``.
"""

from __future__ import annotations

import os
import random
import resource
import time
import tracemalloc
from pathlib import Path

from benchmarks.conftest import write_bench_json
from repro.bgpsim import Seed, propagate
from repro.core.hegemony import global_hegemony
from repro.core.reliance import (
    hierarchy_free_reliance_summaries,
    reliance_summary_sweep,
)
from repro.netgen import build_scenario, profile, validate_scenario

BENCH_JSON = Path(__file__).resolve().parent / "bench_scale.json"
SCALES = ("small", "mid", "large")
#: best-of rounds per timed stage (tames scheduler noise on small hosts)
ROUNDS = 3
#: origins and batch width of the large-profile streamed-vs-eager legs
SWEEP_ORIGINS = 256
SWEEP_BATCH = 256
#: the streamed sweep must peak at least this many times below eager
STREAM_MIN_RATIO = 5.0


def _rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024


def _stage(func, rounds: int = ROUNDS):
    """Best-of wall time (untraced) + tracemalloc peak (one traced run).

    The traced run is separate so tracemalloc's overhead never distorts
    the recorded wall time; ``rss_peak_mb`` is the process high-water
    mark *after* the stage (monotone across stages by definition).
    """
    wall = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = func()
        wall = min(wall, time.perf_counter() - started)
    tracemalloc.start()
    try:
        func()
        _size, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    stats = {
        "wall_s": wall,
        "tracemalloc_peak_mb": peak / 1e6,
        "rss_peak_mb": _rss_mb(),
    }
    return stats, result


def _sweep_origins(scenario, count: int = SWEEP_ORIGINS) -> list[int]:
    """A deterministic origin sample clear of the transit hierarchy (so
    one common excluded set serves the whole sweep)."""
    nodes = sorted(set(scenario.graph.nodes()) - scenario.tiers.hierarchy)
    if len(nodes) <= count:
        return nodes
    return sorted(random.Random(0).sample(nodes, count))


def _stream_legs(scenario):
    """Eager-vs-streamed Fig. 6 + hegemony sweeps on one scenario.

    Returns the per-leg stats and asserts the two contracts the
    streaming tier ships under: bit-identical outputs, >=5x lower peak.
    """
    graph = scenario.graph
    origins = _sweep_origins(scenario)
    common = scenario.tiers.hierarchy
    items = [(origin, common) for origin in origins]
    clouds = sorted(scenario.clouds.values())

    def _measure(func):
        tracemalloc.start()
        try:
            started = time.perf_counter()
            result = func()
            wall = time.perf_counter() - started
            _size, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return {"wall_s": wall, "tracemalloc_peak_mb": peak / 1e6}, result

    legs = {}
    eager_stats, eager_fig6 = _measure(
        lambda: reliance_summary_sweep(
            graph, items, engine="compiled", batch=SWEEP_BATCH, stream=False
        )
    )
    stream_stats, stream_fig6 = _measure(
        lambda: reliance_summary_sweep(
            graph, items, engine="compiled", batch=SWEEP_BATCH, stream=True
        )
    )
    assert stream_fig6 == eager_fig6, "streamed Fig. 6 sweep diverged"
    ratio = (
        eager_stats["tracemalloc_peak_mb"]
        / stream_stats["tracemalloc_peak_mb"]
    )
    assert ratio >= STREAM_MIN_RATIO, (
        f"streamed Fig. 6 peak only {ratio:.1f}x below eager "
        f"({stream_stats['tracemalloc_peak_mb']:.1f} MB vs "
        f"{eager_stats['tracemalloc_peak_mb']:.1f} MB)"
    )
    legs["fig6_reliance"] = {
        "origins": len(origins),
        "batch": SWEEP_BATCH,
        "eager": eager_stats,
        "stream": stream_stats,
        "peak_ratio": ratio,
    }

    eager_stats, eager_heg = _measure(
        lambda: global_hegemony(
            graph,
            clouds,
            origins=origins,
            engine="compiled",
            batch=SWEEP_BATCH,
            stream=False,
        )
    )
    stream_stats, stream_heg = _measure(
        lambda: global_hegemony(
            graph,
            clouds,
            origins=origins,
            engine="compiled",
            batch=SWEEP_BATCH,
            stream=True,
        )
    )
    assert stream_heg == eager_heg, "streamed hegemony sweep diverged"
    ratio = (
        eager_stats["tracemalloc_peak_mb"]
        / stream_stats["tracemalloc_peak_mb"]
    )
    assert ratio >= STREAM_MIN_RATIO, (
        f"streamed hegemony peak only {ratio:.1f}x below eager "
        f"({stream_stats['tracemalloc_peak_mb']:.1f} MB vs "
        f"{eager_stats['tracemalloc_peak_mb']:.1f} MB)"
    )
    legs["global_hegemony"] = {
        "origins": len(origins),
        "batch": SWEEP_BATCH,
        "eager": eager_stats,
        "stream": stream_stats,
        "peak_ratio": ratio,
    }
    return legs


def _scale_row(name, rounds=ROUNDS, stream_legs=False):
    build_stats, scenario = _stage(
        lambda: build_scenario(profile(name)), rounds=1
    )
    graph = scenario.graph
    started = time.perf_counter()
    graph.compile()
    build_stats["wall_s"] += time.perf_counter() - started

    clouds = sorted(scenario.clouds.values())
    propagate_stats, _ = _stage(
        lambda: [
            propagate(graph, Seed(asn=asn), engine="compiled")
            for asn in clouds
        ],
        rounds=rounds,
    )
    fig6_stats, summaries = _stage(
        lambda: hierarchy_free_reliance_summaries(
            graph, clouds, scenario.tiers, engine="compiled"
        ),
        rounds=rounds,
    )
    row = {
        "profile": name,
        "ases": len(graph),
        "clouds": len(clouds),
        "build_compile": build_stats,
        "propagate_sweep": propagate_stats,
        "fig6_reliance_sweep": fig6_stats,
        "networks_relied_on": [s.networks for s in summaries],
    }
    if stream_legs:
        row["stream_vs_eager"] = _stream_legs(scenario)
    return row


def _full_row():
    """Paper-scale generation + structural validation (no sweeps: the
    point of this row is that the ~70k-AS profile builds and passes the
    seed profiles' tolerance band)."""
    gen_stats, scenario = _stage(
        lambda: build_scenario(profile("full")), rounds=1
    )
    val_stats, report = _stage(
        lambda: validate_scenario(scenario), rounds=1
    )
    assert report.ok, report.violations
    return {
        "profile": "full",
        "ases": report.n_ases,
        "edges": report.n_edges,
        "generate": gen_stats,
        "validate": val_stats,
        "structure": {
            "avg_degree": report.avg_degree,
            "assortativity": report.assortativity,
            "clustering": report.clustering,
            "neighbor_degree_corr": report.neighbor_degree_corr,
        },
    }


def test_bench_scale_sweep(benchmark):
    rows = [_scale_row(name) for name in SCALES[:-1]]
    # the large row is timed once under the benchmark timer (building the
    # ~10k-AS scenario repeatedly would dominate the suite's runtime) and
    # carries the streamed-vs-eager paper-scale legs
    rows.append(
        benchmark.pedantic(
            _scale_row,
            args=(SCALES[-1],),
            kwargs={"rounds": 1, "stream_legs": True},
            rounds=1,
            iterations=1,
        )
    )
    record = {"rounds": ROUNDS, "scales": rows}
    if os.environ.get("REPRO_FULL_PROFILE") == "1":
        record["full"] = _full_row()
    write_bench_json(BENCH_JSON, record, engine="compiled", workers=None)

    assert [row["profile"] for row in rows] == list(SCALES)
    for row in rows:
        assert row["propagate_sweep"]["wall_s"] > 0.0
        assert row["fig6_reliance_sweep"]["tracemalloc_peak_mb"] > 0.0
    # scale ordering sanity: each profile really is materially larger
    sizes = [row["ases"] for row in rows]
    assert sizes == sorted(sizes) and sizes[-1] > 4 * sizes[0]
    legs = rows[-1]["stream_vs_eager"]
    assert legs["fig6_reliance"]["peak_ratio"] >= STREAM_MIN_RATIO
    assert legs["global_hegemony"]["peak_ratio"] >= STREAM_MIN_RATIO
