"""Benchmark — propagation and Fig. 6 metrics across scenario scales.

One row per netgen profile (``small`` ~700 ASes, ``mid`` ~2k, ``large``
~10k): wall time to build + compile the topology, to run the per-cloud
compiled propagation sweep, and to run the full Fig. 6/Table 2
hierarchy-free reliance sweep (propagation + metric kernels + summary).
The stamped metadata records the engine / vector / shm / batch settings
the row was measured under, so records from different configurations
remain comparable.

Run it through ``make bench-scale``; the record lands in
``benchmarks/bench_scale.json``.
"""

from __future__ import annotations

import time
from pathlib import Path

from benchmarks.conftest import write_bench_json
from repro.bgpsim import Seed, propagate
from repro.core.reliance import hierarchy_free_reliance_summaries
from repro.netgen import build_scenario, profile

BENCH_JSON = Path(__file__).resolve().parent / "bench_scale.json"
SCALES = ("small", "mid", "large")
#: best-of rounds per timed stage (tames scheduler noise on small hosts)
ROUNDS = 3


def _best_of(func, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - started)
    return best, result


def _scale_row(name):
    started = time.perf_counter()
    scenario = build_scenario(profile(name))
    graph = scenario.graph
    graph.compile()
    build_s = time.perf_counter() - started

    clouds = sorted(scenario.clouds.values())
    propagate_s, _ = _best_of(
        lambda: [
            propagate(graph, Seed(asn=asn), engine="compiled")
            for asn in clouds
        ]
    )
    fig6_s, summaries = _best_of(
        lambda: hierarchy_free_reliance_summaries(
            graph, clouds, scenario.tiers, engine="compiled"
        )
    )
    return {
        "profile": name,
        "ases": len(graph),
        "clouds": len(clouds),
        "build_compile_s": build_s,
        "propagate_sweep_s": propagate_s,
        "fig6_reliance_sweep_s": fig6_s,
        "networks_relied_on": [s.networks for s in summaries],
    }


def test_bench_scale_sweep(benchmark):
    rows = [_scale_row(name) for name in SCALES[:-1]]
    # the large row is timed once under the benchmark timer (building the
    # ~10k-AS scenario repeatedly would dominate the suite's runtime)
    rows.append(
        benchmark.pedantic(
            _scale_row, args=(SCALES[-1],), rounds=1, iterations=1
        )
    )

    record = {"rounds": ROUNDS, "scales": rows}
    write_bench_json(BENCH_JSON, record, engine="compiled", workers=None)

    assert [row["profile"] for row in rows] == list(SCALES)
    for row in rows:
        assert row["propagate_sweep_s"] > 0.0
        assert row["fig6_reliance_sweep_s"] > 0.0
    # scale ordering sanity: each profile really is materially larger
    sizes = [row["ases"] for row in rows]
    assert sizes == sorted(sizes) and sizes[-1] > 4 * sizes[0]
