"""E15 — Fig. 13: path-length mix over time."""

from repro.experiments import fig13_pathlen

from benchmarks.conftest import run_once


def test_bench_fig13_path_lengths(benchmark, ctx2020, ctx2015):
    result = run_once(benchmark, fig13_pathlen.run, ctx2020, ctx2015)

    assert 2020 in result.bars and 2015 in result.bars
    # no 2015 Microsoft traceroute data (as in the paper)
    assert "Microsoft" not in result.bars[2015]
    assert "Microsoft" in result.bars[2020]

    for year, clouds in result.bars.items():
        for cloud, weightings in clouds.items():
            for mix in weightings.values():
                total = mix.one_hop + mix.two_hop + mix.three_plus
                assert total == 0.0 or abs(total - 1.0) < 1e-9

    # paper shape: Google has the largest user-population-weighted direct
    # (1-hop) share in 2020, well ahead of Amazon
    google = result.mix(2020, "Google", "population").one_hop
    amazon = result.mix(2020, "Amazon", "population").one_hop
    assert google > amazon

    print()
    print(result.render())
