"""Benchmark — bit-parallel multi-origin propagation vs per-origin
compiled sweeps.

Two small-profile all-AS sweeps exercise the batch kernel end to end:

* ``collect_ribs`` — the collector RIB snapshot (one propagation per
  announced prefix, then the serial tie-breaking walk);
* ``global_hegemony`` — the AS-hegemony scores (one propagation per
  sampled origin, then the crossing-fraction kernels).

Each sweep runs batched (``batch=BATCH``) and unbatched (``batch=1``,
the per-origin compiled path); correctness is asserted first — the RIB
dumps and hegemony scores must be *bitwise identical* — and the record
lands in ``benchmarks/bench_multiorigin.json``.

The batch kernel acts on the propagation layer: one level-by-level sweep
over the CSR arrays serves a whole batch of origins, so the per-origin
interpreter overhead (frontier dicts, per-node scalar updates) is paid
once per batch instead of once per origin.  The ≥3× bar is therefore
asserted on the propagation layer (``propagate_batch`` vs per-origin
``propagate_compiled`` over the same origins); the end-to-end sweeps
improve by propagation's share of their wall-clock (the serial walk /
kernel layers are untouched) and both numbers land in the JSON.

Run it through ``make bench-multiorigin``.
"""

from __future__ import annotations

import random
import time
from pathlib import Path

from benchmarks.conftest import write_bench_json
from repro.bgpsim import Seed, propagate_batch, propagate_compiled
from repro.collectors import collect_ribs
from repro.core.hegemony import global_hegemony

BENCH_JSON = Path(__file__).resolve().parent / "bench_multiorigin.json"
#: batch width under test (also stamped into the record)
BATCH = 256
#: best-of rounds per timed leg (tames scheduler noise on small hosts)
ROUNDS = 3
#: hegemony origin sample per target
HEGEMONY_SAMPLE = 60


def _best_of(func, rounds=ROUNDS):
    """(best wall seconds, last result) over ``rounds`` runs."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_bench_multiorigin_sweeps(benchmark, ctx2020):
    scenario = ctx2020.scenario
    graph = scenario.graph
    graph.compile()
    origins = sorted(scenario.prefixes)
    targets = sorted(ctx2020.clouds.values())

    # -- propagation layer: the batch kernel vs per-origin compiled -----
    def per_origin_layer():
        return [propagate_compiled(graph, (Seed(asn=o),)) for o in origins]

    def batched_layer():
        states = []
        for start in range(0, len(origins), BATCH):
            chunk = origins[start:start + BATCH]
            states.extend(
                view for _, view in propagate_batch(graph, chunk).views()
            )
        return states

    per_origin_s, _ = _best_of(per_origin_layer)
    batched_s, _ = _best_of(batched_layer)
    propagation_speedup = per_origin_s / batched_s

    # -- end-to-end sweeps, batched vs unbatched ------------------------
    def ribs(width):
        return collect_ribs(
            graph,
            scenario.monitors,
            scenario.prefixes,
            rng=random.Random(20200901),
            batch=width,
        )

    def hegemony(width):
        return global_hegemony(
            graph,
            targets=targets,
            sample=HEGEMONY_SAMPLE,
            rng=random.Random(20200901),
            batch=width,
        )

    ribs_unbatched_s, ribs_unbatched = _best_of(lambda: ribs(1))
    ribs_batched_s, ribs_batched = _best_of(lambda: ribs(BATCH))
    heg_unbatched_s, heg_unbatched = _best_of(lambda: hegemony(1))

    def batched_hegemony():
        return hegemony(BATCH)

    heg_batched_s, heg_batched = _best_of(batched_hegemony)
    benchmark.pedantic(batched_hegemony, rounds=1, iterations=1)

    # correctness first: batched artifacts must be bitwise identical
    assert ribs_unbatched == ribs_batched, (
        "batched collect_ribs dump diverged from the per-origin path"
    )
    assert heg_unbatched == heg_batched, (
        "batched global_hegemony scores diverged from the per-origin path"
    )

    record = {
        "sweeps": "collect_ribs (all-prefix) + global_hegemony (clouds)",
        "ases": len(graph),
        "origins": len(origins),
        "hegemony_targets": len(targets),
        "hegemony_sample": HEGEMONY_SAMPLE,
        "rounds": ROUNDS,
        "propagation_layer_s": {
            "per_origin_compiled": per_origin_s,
            "batched": batched_s,
        },
        "collect_ribs_s": {
            "per_origin_compiled": ribs_unbatched_s,
            "batched": ribs_batched_s,
        },
        "global_hegemony_s": {
            "per_origin_compiled": heg_unbatched_s,
            "batched": heg_batched_s,
        },
        "propagation_speedup": propagation_speedup,
        "collect_ribs_speedup": ribs_unbatched_s / ribs_batched_s,
        "global_hegemony_speedup": heg_unbatched_s / heg_batched_s,
        "outputs_identical": True,
    }
    write_bench_json(
        BENCH_JSON, record, engine="compiled", workers=None, batch=BATCH
    )

    assert propagation_speedup >= 3.0, (
        f"batched sweep ({batched_s * 1e3:.1f} ms) is only "
        f"{propagation_speedup:.2f}x faster than per-origin compiled "
        f"({per_origin_s * 1e3:.1f} ms) over {len(origins)} origins"
    )
    # end-to-end, both sweeps must still improve by propagation's share
    # of their wall-clock: ~half for collect_ribs (the serial walk is
    # untouched), less for hegemony (its crossing-fraction kernels
    # dominate once propagation is batched away)
    assert ribs_unbatched_s / ribs_batched_s >= 1.5
    assert heg_unbatched_s / heg_batched_s >= 1.1
