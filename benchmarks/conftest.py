"""Benchmark fixtures: shared experiment contexts.

Contexts are built once per session (the full §4 measurement pipeline) and
shared across benchmarks via the module-level cache in
``repro.experiments.context``.  Set ``REPRO_PROFILE=year2020`` to run the
benchmarks at full scenario scale.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.context import cached_context
from repro.netgen import companion_2015

PROFILE = os.environ.get("REPRO_PROFILE", "small")


@pytest.fixture(scope="session")
def ctx2020():
    return cached_context(PROFILE)


@pytest.fixture(scope="session")
def ctx2015():
    return cached_context(companion_2015(PROFILE))


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
