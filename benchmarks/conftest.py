"""Benchmark fixtures: shared experiment contexts and JSON records.

Contexts are built once per session (the full §4 measurement pipeline) and
shared across benchmarks via the module-level cache in
``repro.experiments.context``.  Set ``REPRO_PROFILE=year2020`` to run the
benchmarks at full scenario scale.

Benchmarks that persist machine-readable records should write them through
:func:`write_bench_json`, which stamps the environment every record needs
to be interpretable in review: the resolved propagation ``engine``, the
``workers`` count the benchmark ran with, the resolved multi-origin
``batch`` width, and the host's ``cpu_count``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Optional

import pytest

from repro.bgpsim import (
    resolve_batch,
    resolve_engine,
    resolve_shm,
    resolve_vector,
)
from repro.experiments.context import cached_context
from repro.netgen import companion_2015

PROFILE = os.environ.get("REPRO_PROFILE", "small")


def bench_metadata(
    engine: Optional[str] = None,
    workers: Optional[int] = None,
    batch: Optional[int] = None,
) -> dict[str, Any]:
    """The environment stamp every benchmark JSON record carries."""
    return {
        "profile": PROFILE,
        "engine": resolve_engine(engine),
        "workers": workers,
        "batch": resolve_batch(batch),
        "vector": resolve_vector(),
        "shm": resolve_shm(),
        "cpu_count": os.cpu_count() or 1,
    }


def write_bench_json(
    path: Path,
    record: dict[str, Any],
    engine: Optional[str] = None,
    workers: Optional[int] = None,
    batch: Optional[int] = None,
    **extra: Any,
) -> dict[str, Any]:
    """Stamp ``record`` with :func:`bench_metadata` and write it to ``path``.

    Explicit keys in ``record`` win over the stamped defaults, so a
    benchmark comparing several engines can still record its own view.
    Keyword ``extra`` lands in the stamp too — bench-serve uses it to
    record whether metric shards were mapped and how many serve worker
    processes ran, so a reviewed record says which tiers were live.
    Returns the record as written.
    """
    merged = {
        **bench_metadata(engine=engine, workers=workers, batch=batch),
        **extra,
        **record,
    }
    path.write_text(json.dumps(merged, indent=2) + "\n")
    return merged


@pytest.fixture(scope="session")
def ctx2020():
    return cached_context(PROFILE)


@pytest.fixture(scope="session")
def ctx2015():
    return cached_context(companion_2015(PROFILE))


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
