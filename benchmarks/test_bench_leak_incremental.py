"""Benchmark — incremental delta-propagation vs full recompute on the
Fig. 7/8 leak sweep.

The headline claim of the incremental engine is that a Fig. 7/8-shaped
resilience sweep (five announcement/locking configurations, many leakers
each) gets ≥3× faster because each configuration's baseline is propagated
once and every leaker only re-propagates the region its leak disturbs.
This benchmark runs the same sweep under both engines on the shared
experiment context, asserts the detoured-fraction curves are *bitwise
identical*, asserts the speedup, and records the comparison — wall
times, speedup, and the mean/max fraction of ASes the delta passes
visited — in ``benchmarks/bench_leak_incremental.json`` (stamped with
engine/workers/cpu_count like every benchmark record).

Run it through ``make bench-leaks``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from benchmarks.conftest import write_bench_json
from repro.bgpsim import RoutingStateCache
from repro.core.leaks import (
    LEAK_CONFIGURATIONS,
    configuration_seed_and_locks,
    simulate_leaks,
)

BENCH_JSON = Path(__file__).resolve().parent / "bench_leak_incremental.json"
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))
LEAKER_COUNT = int(os.environ.get("REPRO_BENCH_LEAKERS", "40"))


def _sweep(graph, tiers, origin, leakers, engine, cache=None):
    """One Fig. 7/8-shaped sweep: every configuration, every leaker.

    Returns ``(curves, outcomes)`` where ``curves`` maps configuration →
    sorted detoured fractions (exactly what ``resilience_curve`` plots).
    """
    curves = {}
    outcomes = []
    for configuration in LEAK_CONFIGURATIONS:
        seed, locks = configuration_seed_and_locks(
            graph, origin, tiers, configuration
        )
        results = simulate_leaks(
            graph, seed, leakers, peer_locked=locks,
            engine=engine, cache=cache,
        )
        outcomes.extend(results)
        curves[configuration] = sorted(
            outcome.fraction_detoured
            for outcome in results
            if outcome is not None
        )
    return curves, outcomes


def test_bench_leak_sweep_incremental_vs_full(benchmark, ctx2020):
    graph, tiers = ctx2020.graph, ctx2020.tiers
    nodes = sorted(graph.nodes())
    # the sweep the experiment actually runs is per-cloud (Fig. 7/8)
    origin = sorted(ctx2020.clouds.values())[0]
    leakers = [
        asn
        for asn in nodes[:: max(1, len(nodes) // LEAKER_COUNT)]
        if asn != origin
    ]

    started = time.perf_counter()
    full_curves, _ = _sweep(graph, tiers, origin, leakers, "compiled")
    full_s = time.perf_counter() - started

    cache = RoutingStateCache(graph, engine="incremental")

    def sweep():
        return _sweep(
            graph, tiers, origin, leakers, "incremental", cache=cache
        )

    started = time.perf_counter()
    incremental_curves, outcomes = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    incremental_s = time.perf_counter() - started

    # correctness first: the curves must be bitwise identical
    assert incremental_curves == full_curves, (
        "incremental sweep diverged from the full recompute"
    )

    visited = [
        outcome.visited_fraction
        for outcome in outcomes
        if outcome is not None and outcome.visited_fraction is not None
    ]
    assert visited, "no leaker took the delta path"
    speedup = full_s / incremental_s
    record = {
        "origin": origin,
        "leakers": len(leakers),
        "configurations": len(LEAK_CONFIGURATIONS),
        "ases": len(graph),
        "full_s": full_s,
        "incremental_s": incremental_s,
        "speedup": speedup,
        "delta_path_outcomes": len(visited),
        "mean_visited_fraction": sum(visited) / len(visited),
        "max_visited_fraction": max(visited),
        "curves_identical": True,
    }
    write_bench_json(
        BENCH_JSON, record, engine="incremental", workers=None
    )

    assert speedup >= 3.0, (
        f"incremental sweep ({incremental_s:.3f}s) is only {speedup:.2f}x "
        f"faster than the full recompute ({full_s:.3f}s); the shared "
        "baseline should buy at least 3x on this sweep"
    )
