"""E10 — regenerate Fig. 12 (population coverage at 500/700/1000 km)."""

from repro.experiments import fig12_coverage

from benchmarks.conftest import run_once


def test_bench_fig12_population_coverage(benchmark, ctx2020):
    result = run_once(benchmark, fig12_coverage.run, ctx2020)

    clouds = result.cohort("clouds")
    transit = result.cohort("transit")

    # coverage grows with radius for both cohorts
    for row in (clouds, transit):
        assert row.percent(500) <= row.percent(700) <= row.percent(1000)

    # paper shape: the transit cohort leads worldwide, but not by much
    # relative to its much larger number of unique locations
    assert transit.percent(500) >= clouds.percent(500)
    assert transit.percent(500) - clouds.percent(500) < 30.0

    # clouds have dense coverage in Europe and North America
    assert result.cohort("clouds", "Europe").percent(500) > 60.0
    assert result.cohort("clouds", "North America").percent(500) > 60.0

    # individual clouds cover more population than the median individual
    # transit provider
    provider_500 = sorted(
        row.percent(500)
        for row in result.provider_rows
        if row.region == "World"
    )
    median = provider_500[len(provider_500) // 2]
    google = result.provider("Google").percent(500)
    assert google > 0.5 * median

    print()
    print(result.render())
