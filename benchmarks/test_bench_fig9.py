"""E7 — regenerate Fig. 9 (user-weighted leak resilience for Google)."""

from repro.experiments import fig7_10_leaks
from repro.experiments.report import cdf_summary

from benchmarks.conftest import run_once


def test_bench_fig9_users_detoured(benchmark, ctx2020):
    result = run_once(
        benchmark, fig7_10_leaks.run_fig9, ctx2020, leaks_per_config=40
    )

    assert result.users_curves
    for configuration, curve in result.users_curves.items():
        assert all(0.0 <= x <= 1.0 for x in curve)

    # paper shape: Google's peering footprint protects users; locking at
    # T1+T2 protects more than no locking, and announce-hierarchy-only is
    # the worst configuration for users too
    def mean(config):
        curve = result.users_curves[config]
        return sum(curve) / len(curve) if curve else 0.0

    assert mean("announce_all_t1t2_lock") <= mean("announce_all") + 1e-9
    assert mean("announce_hierarchy_only") >= mean("announce_all")

    print()
    for configuration, curve in result.users_curves.items():
        print(f"  {configuration}: {cdf_summary(curve)}")
