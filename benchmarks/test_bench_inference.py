"""Ablation — AS-relationship inference from collector paths.

The paper consumes CAIDA's inferred relationships; this bench regenerates
that upstream step on the synthetic Internet: simulate collector RIBs from
the scenario's monitors, run Gao's heuristic and the AS-Rank-style
algorithm, and score both against ground truth.
"""

import random

import pytest

from repro.collectors import collect_ribs
from repro.inference import (
    evaluate_inference,
    infer_asrank,
    infer_gao,
    infer_problink,
)

from benchmarks.conftest import run_once


@pytest.fixture(scope="module")
def paths(ctx2020):
    scenario = ctx2020.scenario
    dump = collect_ribs(
        scenario.graph,
        scenario.monitors,
        scenario.prefixes,
        rng=random.Random(1),
    )
    return dump.paths()


def test_bench_infer_gao(benchmark, ctx2020, paths):
    result = run_once(benchmark, infer_gao, paths)
    accuracy = evaluate_inference(ctx2020.scenario.graph, result.records)
    assert accuracy.accuracy > 0.5
    assert accuracy.unknown_edges == 0
    print()
    print("Gao:", accuracy.summary())


def test_bench_infer_asrank(benchmark, ctx2020, paths):
    result = run_once(benchmark, infer_asrank, paths)
    accuracy = evaluate_inference(ctx2020.scenario.graph, result.records)

    # the literature's shape: AS-Rank-style inference is highly accurate
    # on transit edges and clearly better than Gao overall
    assert accuracy.p2c_accuracy > 0.9
    assert accuracy.accuracy > 0.8
    gao_accuracy = evaluate_inference(
        ctx2020.scenario.graph, infer_gao(paths).records
    )
    assert accuracy.accuracy > gao_accuracy.accuracy

    # the inferred clique consists of real top-tier networks
    for asn in result.clique:
        assert not ctx2020.scenario.graph.is_stub(asn)

    print()
    print("AS-Rank-style:", accuracy.summary())


def test_bench_infer_problink(benchmark, ctx2020, paths):
    result = run_once(benchmark, infer_problink, paths)
    accuracy = evaluate_inference(ctx2020.scenario.graph, result.records)

    # ProbLink's claim: it improves on AS-Rank, mostly by fixing peerings
    asrank_accuracy = evaluate_inference(
        ctx2020.scenario.graph, infer_asrank(paths).records
    )
    assert accuracy.accuracy >= asrank_accuracy.accuracy
    assert accuracy.p2p_accuracy > asrank_accuracy.p2p_accuracy
    assert result.iterations >= 1

    print()
    print("ProbLink-style:", accuracy.summary())
