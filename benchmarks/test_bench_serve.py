"""Benchmark — the query-serving tiers: cold vs warm LRU vs mmap shards.

A fixed query mix (path-length lookups cycling over sampled origins
toward a high-degree target) is answered three ways:

* ``cold`` — one full ``propagate`` per query, the pre-PR-8 cost of an
  uncached question;
* ``warm`` — ``RoutingStateCache.state_for`` over a prewarmed LRU;
* ``precomputed`` — ``ShardStore.state_for`` zero-copy off the mmap
  shards ``precompute_shards`` wrote (the ``repro serve`` disk tier).

Correctness is asserted first and bit-identically: every tier must give
byte-equal answers (and, per origin, identical route-class/length
arrays) to a fresh live propagation, and the reliance/hegemony floats
must match exactly.  The record then asserts the precomputed tier is
≥10× faster per query than cold propagation, and a load-generator leg
drives the real HTTP server over localhost to record end-to-end
queries/sec and tail latency.

Two further legs cover PR 10:

* ``metric`` — ``/reliance`` and ``/hegemony`` answered off precomputed
  metric shards (``repro precompute --metrics``) vs the same service
  recomputing the kernels per query.  Answers must be bit-identical
  (exact ``float.hex()``) and the metric tier must be ≥10× faster than
  the pure-Python kernel baseline (``REPRO_VECTOR=off``); the
  vectorized-kernel baseline is recorded unasserted.
* ``multi-worker`` — a threaded client load against ``WorkerSupervisor``
  with 1 and 2 ``SO_REUSEPORT`` workers; the parallel win is asserted
  only on multi-CPU hosts.

Run via ``make bench-serve``; the record lands in
``benchmarks/bench_serve.json``.
"""

from __future__ import annotations

import http.client
import json
import os
import statistics
import threading
import time
from pathlib import Path

from benchmarks.conftest import write_bench_json
from repro.bgpsim import (
    RoutingStateCache,
    Seed,
    precompute_shards,
    propagate,
)
from repro.bgpsim.shards import (
    ShardStore,
    default_metric_targets,
    precompute_metric_shards,
)
from repro.core.hegemony import local_hegemony
from repro.core.reliance import reliance_from_state
from repro.serve import (
    QueryService,
    ServiceSpec,
    WorkerSupervisor,
    start_server_thread,
)

BENCH_JSON = Path(__file__).resolve().parent / "bench_serve.json"
N_ORIGINS = 48
QUERIES = 192
HTTP_QUERIES = 300
WORKER_CLIENTS = 4
WORKER_QUERIES_PER_CLIENT = 60


def _workload(graph):
    nodes = sorted(graph.nodes())
    step = max(1, len(nodes) // N_ORIGINS)
    origins = nodes[::step][:N_ORIGINS]
    target = max(
        nodes, key=lambda a: len(graph.customers(a)) + len(graph.peers(a))
    )
    return origins, target


def _percentile(sorted_ns, q):
    index = min(len(sorted_ns) - 1, round(q * (len(sorted_ns) - 1)))
    return sorted_ns[index]


def _tier_record(timings_ns):
    ordered = sorted(timings_ns)
    total_s = sum(timings_ns) / 1e9
    return {
        "queries": len(timings_ns),
        "qps": len(timings_ns) / total_s,
        "mean_us": statistics.fmean(timings_ns) / 1e3,
        "p50_us": _percentile(ordered, 0.50) / 1e3,
        "p99_us": _percentile(ordered, 0.99) / 1e3,
    }


def _drive(state_of, origins, target, queries=QUERIES):
    """Per-query ns timings + answers for one tier's state source."""
    timings = []
    answers = {}
    for k in range(queries):
        origin = origins[k % len(origins)]
        started = time.perf_counter_ns()
        state = state_of(origin)
        answer = state.path_length(target)
        timings.append(time.perf_counter_ns() - started)
        answers[origin] = answer
    return timings, answers


def _drive_endpoint(service, path, origins, target, queries=QUERIES):
    """Per-query ns timings + answers through ``QueryService.answer``."""
    key = path.lstrip("/")
    timings = []
    answers = {}
    for k in range(queries):
        origin = origins[k % len(origins)]
        started = time.perf_counter_ns()
        status, payload = service.answer(
            path, {"origin": str(origin), "target": str(target)}
        )
        timings.append(time.perf_counter_ns() - started)
        assert status == 200
        answers[origin] = payload[key]
    return timings, answers


def _worker_load(graph, corpus, origins, target, expected, workers):
    """Threaded keep-alive clients against a worker fleet; returns
    (qps, one worker's /stats payload)."""
    spec = ServiceSpec(graph=graph, shards=str(corpus))
    errors: list[Exception] = []

    def client(idx: int, port: int) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
        try:
            for k in range(WORKER_QUERIES_PER_CLIENT):
                origin = origins[(idx + k) % len(origins)]
                conn.request(
                    "GET", f"/reliance?origin={origin}&target={target}"
                )
                response = conn.getresponse()
                payload = json.loads(response.read())
                assert response.status == 200
                assert (
                    float(payload["reliance"]).hex()
                    == float(expected[origin]).hex()
                ), f"worker answer diverged for AS{origin}"
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
        finally:
            conn.close()

    with WorkerSupervisor(spec, workers=workers) as sup:
        threads = [
            threading.Thread(target=client, args=(i, sup.port))
            for i in range(WORKER_CLIENTS)
        ]
        started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - started
        conn = http.client.HTTPConnection("127.0.0.1", sup.port, timeout=120)
        try:
            conn.request("GET", "/stats")
            stats = json.loads(conn.getresponse().read())
        finally:
            conn.close()
    if errors:
        raise errors[0]
    return (WORKER_CLIENTS * WORKER_QUERIES_PER_CLIENT) / wall, stats


def test_bench_serving_tiers(benchmark, ctx2020, tmp_path):
    graph = ctx2020.graph
    graph.compile()
    origins, target = _workload(graph)

    # ground truth, computed fresh and kept out of every tier's path
    live = {o: propagate(graph, Seed(asn=o)) for o in origins}
    expected = {o: live[o].path_length(target) for o in origins}

    # -- precompute the shard corpus (the `repro precompute` cost) -------
    precompute_started = time.perf_counter()
    corpus = precompute_shards(graph, tmp_path, workers=1)
    precompute_s = time.perf_counter() - precompute_started
    # metric rows too (`repro precompute --metrics`), with the workload
    # target guaranteed a fused hegemony column
    metric_targets = tuple(
        sorted(set(default_metric_targets(graph)) | {target})
    )
    metric_started = time.perf_counter()
    precompute_metric_shards(graph, tmp_path, targets=metric_targets)
    metric_precompute_s = time.perf_counter() - metric_started
    store = ShardStore.open(corpus, graph=graph)
    assert store.metrics is not None

    # -- cold: one propagation per query ---------------------------------
    cold_ns, cold_answers = _drive(
        lambda o: propagate(graph, Seed(asn=o)), origins, target
    )
    # -- warm: prewarmed LRU ---------------------------------------------
    cache = RoutingStateCache(graph)
    cache.prefetch(origins, workers=1)
    warm_ns, warm_answers = _drive(cache.state_for, origins, target)
    # -- precomputed: zero-copy mmap reads -------------------------------
    disk_ns, disk_answers = _drive(store.state_for, origins, target)
    benchmark.pedantic(
        lambda: _drive(store.state_for, origins, target),
        rounds=1,
        iterations=1,
    )

    # -- every served answer is bit-identical to live propagation --------
    assert cold_answers == expected
    assert warm_answers == expected
    assert disk_answers == expected
    for origin in origins:
        disk_state = store.state_for(origin)
        assert list(disk_state._route_class) == list(
            live[origin]._route_class
        ), f"route classes diverged for AS{origin}"
        assert list(disk_state._length) == list(live[origin]._length), (
            f"path lengths diverged for AS{origin}"
        )
    metric_origins = origins[:: max(1, len(origins) // 6)]
    for origin in metric_origins:
        want_rely = reliance_from_state(live[origin]).get(target, 0.0)
        got_rely = reliance_from_state(store.state_for(origin)).get(
            target, 0.0
        )
        assert got_rely == want_rely, f"reliance floats differ for AS{origin}"
        want_heg = local_hegemony(
            graph, origin, target, cache=RoutingStateCache(graph)
        )
        got_heg = local_hegemony(
            graph, origin, target, cache=RoutingStateCache(graph, shards=store)
        )
        assert got_heg == want_heg, f"hegemony floats differ for AS{origin}"

    # -- HTTP load generator over the real server ------------------------
    service = QueryService(graph, shards=store)
    http_ns = []
    with start_server_thread(service) as handle:
        conn = http.client.HTTPConnection(handle.host, handle.port)
        try:
            for k in range(HTTP_QUERIES):
                origin = origins[k % len(origins)]
                started = time.perf_counter_ns()
                conn.request(
                    "GET", f"/path_length?origin={origin}&target={target}"
                )
                response = conn.getresponse()
                payload = json.loads(response.read())
                http_ns.append(time.perf_counter_ns() - started)
                assert response.status == 200
                assert payload["path_length"] == expected[origin], (
                    f"served answer diverged from live propagation "
                    f"for AS{origin}"
                )
        finally:
            conn.close()

    # -- metric tier: /reliance & /hegemony off precomputed rows ---------
    m_origins = [o for o in origins if o != target]
    metric_service = QueryService(graph, shards=store)
    assert metric_service.metrics is not None
    baseline = QueryService(graph, shards=store, metrics=None)
    baseline.cache.prefetch(m_origins, workers=1)  # time the kernel, not
    # the propagation: the baseline reads warm states and recomputes the
    # reliance/hegemony kernels on every request
    rel_metric_ns, rel_metric = _drive_endpoint(
        metric_service, "/reliance", m_origins, target
    )
    heg_metric_ns, heg_metric = _drive_endpoint(
        metric_service, "/hegemony", m_origins, target
    )
    metric_stats = metric_service.answer("/stats", {})[1]
    assert metric_stats["tiers"]["metric"] == len(rel_metric_ns) + len(
        heg_metric_ns
    ), "metric queries leaked past the metric tier"

    # asserted baseline: the pure-Python kernels (REPRO_VECTOR=off);
    # the vectorized kernels are recorded too, unasserted
    saved_vector = os.environ.get("REPRO_VECTOR")
    os.environ["REPRO_VECTOR"] = "off"
    try:
        rel_loop_ns, rel_loop = _drive_endpoint(
            baseline, "/reliance", m_origins, target
        )
        heg_loop_ns, heg_loop = _drive_endpoint(
            baseline, "/hegemony", m_origins, target
        )
    finally:
        if saved_vector is None:
            os.environ.pop("REPRO_VECTOR", None)
        else:
            os.environ["REPRO_VECTOR"] = saved_vector
    rel_vec_ns, rel_vec = _drive_endpoint(
        baseline, "/reliance", m_origins, target
    )
    heg_vec_ns, heg_vec = _drive_endpoint(
        baseline, "/hegemony", m_origins, target
    )
    for origin in m_origins:
        assert (
            float(rel_metric[origin]).hex()
            == float(rel_loop[origin]).hex()
            == float(rel_vec[origin]).hex()
        ), f"reliance floats diverged for AS{origin}"
        assert (
            float(heg_metric[origin]).hex()
            == float(heg_loop[origin]).hex()
            == float(heg_vec[origin]).hex()
        ), f"hegemony floats diverged for AS{origin}"

    metric_legs = {
        "reliance": {
            "metric": _tier_record(rel_metric_ns),
            "kernel_loop": _tier_record(rel_loop_ns),
            "kernel_vector": _tier_record(rel_vec_ns),
        },
        "hegemony": {
            "metric": _tier_record(heg_metric_ns),
            "kernel_loop": _tier_record(heg_loop_ns),
            "kernel_vector": _tier_record(heg_vec_ns),
        },
    }
    metric_speedups = {
        endpoint: legs["kernel_loop"]["mean_us"] / legs["metric"]["mean_us"]
        for endpoint, legs in metric_legs.items()
    }

    # -- multi-worker serving: 1 vs 2 SO_REUSEPORT processes -------------
    qps_one, _ = _worker_load(
        graph, corpus, m_origins, target, rel_metric, workers=1
    )
    qps_two, worker_stats = _worker_load(
        graph, corpus, m_origins, target, rel_metric, workers=2
    )
    store.close()

    tiers = {
        "cold": _tier_record(cold_ns),
        "warm": _tier_record(warm_ns),
        "precomputed": _tier_record(disk_ns),
    }
    speedup_disk = tiers["cold"]["mean_us"] / tiers["precomputed"]["mean_us"]
    speedup_warm = tiers["cold"]["mean_us"] / tiers["warm"]["mean_us"]
    record = {
        "workload": (
            f"{QUERIES} path-length queries cycling over "
            f"{len(origins)} origins toward AS{target}"
        ),
        "ases": len(graph),
        "precompute_s": precompute_s,
        "precomputed_origins": len(graph),
        "tiers": tiers,
        "speedup_precomputed_vs_cold": speedup_disk,
        "speedup_warm_vs_cold": speedup_warm,
        "http": {
            **_tier_record(http_ns),
            "endpoint": "path_length",
            "clients": 1,
            "keep_alive": True,
        },
        "metric": {
            "precompute_s": metric_precompute_s,
            "hegemony_targets": len(metric_targets),
            "queries_per_endpoint": QUERIES,
            "endpoints": metric_legs,
            "speedup_metric_vs_kernel_loop": metric_speedups,
        },
        "latency_histograms": metric_stats["latency"],
        "multi_worker": {
            "clients": WORKER_CLIENTS,
            "queries_per_run": WORKER_CLIENTS * WORKER_QUERIES_PER_CLIENT,
            "endpoint": "reliance",
            "qps_1_worker": qps_one,
            "qps_2_workers": qps_two,
            "speedup_2_workers": qps_two / qps_one,
            "parallel_win_asserted": (os.cpu_count() or 1) >= 2,
            "worker_latency_histograms": worker_stats["latency"],
        },
        "answers_bit_identical": True,
    }
    write_bench_json(
        BENCH_JSON,
        record,
        engine="compiled",
        workers=1,
        metric_shards=True,
        serve_worker_runs=[1, 2],
    )

    assert speedup_disk >= 10.0, (
        f"precomputed tier ({tiers['precomputed']['mean_us']:.1f} us/query) "
        f"is only {speedup_disk:.1f}x faster than cold propagation "
        f"({tiers['cold']['mean_us']:.1f} us/query); expected >=10x"
    )
    for endpoint, speedup in metric_speedups.items():
        legs = metric_legs[endpoint]
        assert speedup >= 10.0, (
            f"metric tier /{endpoint} ({legs['metric']['mean_us']:.1f} "
            f"us/query) is only {speedup:.1f}x faster than the live "
            f"kernel ({legs['kernel_loop']['mean_us']:.1f} us/query); "
            f"expected >=10x"
        )
    if (os.cpu_count() or 1) >= 2:
        assert qps_two > qps_one, (
            f"2 workers ({qps_two:.0f} qps) did not beat 1 worker "
            f"({qps_one:.0f} qps) on a {os.cpu_count()}-CPU host"
        )
