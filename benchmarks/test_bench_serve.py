"""Benchmark — the query-serving tiers: cold vs warm LRU vs mmap shards.

A fixed query mix (path-length lookups cycling over sampled origins
toward a high-degree target) is answered three ways:

* ``cold`` — one full ``propagate`` per query, the pre-PR-8 cost of an
  uncached question;
* ``warm`` — ``RoutingStateCache.state_for`` over a prewarmed LRU;
* ``precomputed`` — ``ShardStore.state_for`` zero-copy off the mmap
  shards ``precompute_shards`` wrote (the ``repro serve`` disk tier).

Correctness is asserted first and bit-identically: every tier must give
byte-equal answers (and, per origin, identical route-class/length
arrays) to a fresh live propagation, and the reliance/hegemony floats
must match exactly.  The record then asserts the precomputed tier is
≥10× faster per query than cold propagation, and a load-generator leg
drives the real HTTP server over localhost to record end-to-end
queries/sec and tail latency.

Run via ``make bench-serve``; the record lands in
``benchmarks/bench_serve.json``.
"""

from __future__ import annotations

import http.client
import json
import statistics
import time
from pathlib import Path

from benchmarks.conftest import write_bench_json
from repro.bgpsim import (
    RoutingStateCache,
    Seed,
    precompute_shards,
    propagate,
)
from repro.bgpsim.shards import ShardStore
from repro.core.hegemony import local_hegemony
from repro.core.reliance import reliance_from_state
from repro.serve import QueryService, start_server_thread

BENCH_JSON = Path(__file__).resolve().parent / "bench_serve.json"
N_ORIGINS = 48
QUERIES = 192
HTTP_QUERIES = 300


def _workload(graph):
    nodes = sorted(graph.nodes())
    step = max(1, len(nodes) // N_ORIGINS)
    origins = nodes[::step][:N_ORIGINS]
    target = max(
        nodes, key=lambda a: len(graph.customers(a)) + len(graph.peers(a))
    )
    return origins, target


def _percentile(sorted_ns, q):
    index = min(len(sorted_ns) - 1, round(q * (len(sorted_ns) - 1)))
    return sorted_ns[index]


def _tier_record(timings_ns):
    ordered = sorted(timings_ns)
    total_s = sum(timings_ns) / 1e9
    return {
        "queries": len(timings_ns),
        "qps": len(timings_ns) / total_s,
        "mean_us": statistics.fmean(timings_ns) / 1e3,
        "p50_us": _percentile(ordered, 0.50) / 1e3,
        "p99_us": _percentile(ordered, 0.99) / 1e3,
    }


def _drive(state_of, origins, target, queries=QUERIES):
    """Per-query ns timings + answers for one tier's state source."""
    timings = []
    answers = {}
    for k in range(queries):
        origin = origins[k % len(origins)]
        started = time.perf_counter_ns()
        state = state_of(origin)
        answer = state.path_length(target)
        timings.append(time.perf_counter_ns() - started)
        answers[origin] = answer
    return timings, answers


def test_bench_serving_tiers(benchmark, ctx2020, tmp_path):
    graph = ctx2020.graph
    graph.compile()
    origins, target = _workload(graph)

    # ground truth, computed fresh and kept out of every tier's path
    live = {o: propagate(graph, Seed(asn=o)) for o in origins}
    expected = {o: live[o].path_length(target) for o in origins}

    # -- precompute the shard corpus (the `repro precompute` cost) -------
    precompute_started = time.perf_counter()
    corpus = precompute_shards(graph, tmp_path, workers=1)
    precompute_s = time.perf_counter() - precompute_started
    store = ShardStore.open(corpus, graph=graph)

    # -- cold: one propagation per query ---------------------------------
    cold_ns, cold_answers = _drive(
        lambda o: propagate(graph, Seed(asn=o)), origins, target
    )
    # -- warm: prewarmed LRU ---------------------------------------------
    cache = RoutingStateCache(graph)
    cache.prefetch(origins, workers=1)
    warm_ns, warm_answers = _drive(cache.state_for, origins, target)
    # -- precomputed: zero-copy mmap reads -------------------------------
    disk_ns, disk_answers = _drive(store.state_for, origins, target)
    benchmark.pedantic(
        lambda: _drive(store.state_for, origins, target),
        rounds=1,
        iterations=1,
    )

    # -- every served answer is bit-identical to live propagation --------
    assert cold_answers == expected
    assert warm_answers == expected
    assert disk_answers == expected
    for origin in origins:
        disk_state = store.state_for(origin)
        assert list(disk_state._route_class) == list(
            live[origin]._route_class
        ), f"route classes diverged for AS{origin}"
        assert list(disk_state._length) == list(live[origin]._length), (
            f"path lengths diverged for AS{origin}"
        )
    metric_origins = origins[:: max(1, len(origins) // 6)]
    for origin in metric_origins:
        want_rely = reliance_from_state(live[origin]).get(target, 0.0)
        got_rely = reliance_from_state(store.state_for(origin)).get(
            target, 0.0
        )
        assert got_rely == want_rely, f"reliance floats differ for AS{origin}"
        want_heg = local_hegemony(
            graph, origin, target, cache=RoutingStateCache(graph)
        )
        got_heg = local_hegemony(
            graph, origin, target, cache=RoutingStateCache(graph, shards=store)
        )
        assert got_heg == want_heg, f"hegemony floats differ for AS{origin}"

    # -- HTTP load generator over the real server ------------------------
    service = QueryService(graph, shards=store)
    http_ns = []
    with start_server_thread(service) as handle:
        conn = http.client.HTTPConnection(handle.host, handle.port)
        try:
            for k in range(HTTP_QUERIES):
                origin = origins[k % len(origins)]
                started = time.perf_counter_ns()
                conn.request(
                    "GET", f"/path_length?origin={origin}&target={target}"
                )
                response = conn.getresponse()
                payload = json.loads(response.read())
                http_ns.append(time.perf_counter_ns() - started)
                assert response.status == 200
                assert payload["path_length"] == expected[origin], (
                    f"served answer diverged from live propagation "
                    f"for AS{origin}"
                )
        finally:
            conn.close()
    store.close()

    tiers = {
        "cold": _tier_record(cold_ns),
        "warm": _tier_record(warm_ns),
        "precomputed": _tier_record(disk_ns),
    }
    speedup_disk = tiers["cold"]["mean_us"] / tiers["precomputed"]["mean_us"]
    speedup_warm = tiers["cold"]["mean_us"] / tiers["warm"]["mean_us"]
    record = {
        "workload": (
            f"{QUERIES} path-length queries cycling over "
            f"{len(origins)} origins toward AS{target}"
        ),
        "ases": len(graph),
        "precompute_s": precompute_s,
        "precomputed_origins": len(graph),
        "tiers": tiers,
        "speedup_precomputed_vs_cold": speedup_disk,
        "speedup_warm_vs_cold": speedup_warm,
        "http": {
            **_tier_record(http_ns),
            "endpoint": "path_length",
            "clients": 1,
            "keep_alive": True,
        },
        "answers_bit_identical": True,
    }
    write_bench_json(BENCH_JSON, record, engine="compiled", workers=1)

    assert speedup_disk >= 10.0, (
        f"precomputed tier ({tiers['precomputed']['mean_us']:.1f} us/query) "
        f"is only {speedup_disk:.1f}x faster than cold propagation "
        f"({tiers['cold']['mean_us']:.1f} us/query); expected >=10x"
    )
