"""E1 — regenerate Fig. 2 and check its shape."""

from repro.experiments import fig2_reachability

from benchmarks.conftest import run_once


def test_bench_fig2_reachability(benchmark, ctx2020):
    result = run_once(benchmark, fig2_reachability.run, ctx2020)
    total = max(result.total_ases - 1, 1)

    # every row nests: full >= provider-free >= T1-free >= hierarchy-free
    for row in result.rows:
        rep = row.report
        assert rep.hierarchy_free <= rep.tier1_free <= rep.provider_free

    # Tier-1s have no providers: provider-free reach is the maximum seen
    max_reach = max(r.report.provider_free for r in result.rows)
    for row in result.rows:
        if row.cohort == "tier1":
            assert row.report.provider_free >= 0.9 * max_reach

    # paper shape: the clouds are among the least affected networks —
    # every cloud except Amazon lands in the top third by hierarchy-free
    # reachability, and the best cloud retains the bulk of the Internet
    ranked = [r.name for r in result.sorted_rows()]
    for cloud in ("Google", "Microsoft", "IBM"):
        assert ranked.index(cloud) < len(ranked) / 3, ranked
    best_cloud = max(
        r.report.hierarchy_free for r in result.cloud_rows()
    )
    assert best_cloud / total > 0.6

    print()
    print(result.render())
