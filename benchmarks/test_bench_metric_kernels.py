"""Benchmark — array-native metric kernels vs the dict metric path on
the Fig. 6/Table 2 reliance sweep.

Three legs run the same small-profile sweep (per cloud: propagate under
the hierarchy-free exclusions, compute reliance, aggregate the Fig. 6 /
Table 2 summary):

* ``reference_dict`` — reference engine, dict metric implementations;
* ``compiled_dict`` — compiled propagation, then the dict metric path
  (which materializes ``state.routes``): the pre-kernel pipeline on the
  default engine;
* ``compiled_kernel`` — compiled propagation, array kernels end to end
  (``routes`` is never materialized).

Each leg is timed end-to-end (propagation included) and again on the
metric layer alone (states pre-propagated, kernel/materialization caches
cleared per round).  The metric layer is where the kernels act, and the
record asserts it is ≥3× faster than the dict path on the same states;
end-to-end the sweep improves by roughly the metric layer's share of
wall-clock (propagation — already the compiled CSR kernel of PR 2 —
dominates the remainder; both numbers land in the JSON).  Correctness
is asserted first: all legs must produce identical summaries, and the
array leg must leave ``CompiledRoutingState._materialized`` as ``None``
on every state.  Peak metric-layer allocations are recorded through
``tracemalloc``.

Run it through ``make bench-metrics-kernel``; the record lands in
``benchmarks/bench_metric_kernels.json``.
"""

from __future__ import annotations

import time
import tracemalloc
from pathlib import Path

from benchmarks.conftest import write_bench_json
from repro.bgpsim import Seed, propagate
from repro.core.reliance import (
    _reliance_from_routes,
    summarize_reliance,
    summarize_reliance_from_state,
)

BENCH_JSON = Path(__file__).resolve().parent / "bench_metric_kernels.json"
#: best-of rounds per timed leg (tames scheduler noise on small hosts)
ROUNDS = 5


def _cloud_sweep_pairs(ctx):
    """The Fig. 6/Table 2 sweep inputs: (origin, hierarchy-free excluded)."""
    graph, tiers = ctx.graph, ctx.tiers
    return [
        (asn, (graph.providers(asn) | tiers.hierarchy) - {asn})
        for _, asn in ctx.clouds.items()
    ]


def _dict_summary(state):
    return summarize_reliance(_reliance_from_routes(state))


def _end_to_end(graph, pairs, engine, use_kernel):
    summaries = []
    for origin, excluded in pairs:
        state = propagate(
            graph, Seed(asn=origin, key="origin"),
            excluded=excluded, engine=engine,
        )
        if use_kernel:
            summaries.append(summarize_reliance_from_state(state))
        else:
            summaries.append(_dict_summary(state))
    return summaries


def _propagated_states(graph, pairs, engine):
    return [
        propagate(
            graph, Seed(asn=origin, key="origin"),
            excluded=excluded, engine=engine,
        )
        for origin, excluded in pairs
    ]


def _clear_metric_caches(states):
    for state in states:
        if hasattr(state, "_materialized"):
            state._materialized = None
            state._metric_dag = None
            state._metric_counts = None


def _metric_layer(states, use_kernel):
    if use_kernel:
        return [summarize_reliance_from_state(state) for state in states]
    return [_dict_summary(state) for state in states]


def _best_of(func, rounds=ROUNDS):
    """(best wall seconds, last result) over ``rounds`` runs."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - started)
    return best, result


def _metric_peak_kb(states, use_kernel):
    """tracemalloc peak (KiB) of one cold metric pass over ``states``."""
    _clear_metric_caches(states)
    tracemalloc.start()
    _metric_layer(states, use_kernel)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak / 1024


def test_bench_metric_kernels_fig6_sweep(benchmark, ctx2020):
    graph = ctx2020.graph
    graph.compile()
    pairs = _cloud_sweep_pairs(ctx2020)

    # -- end-to-end legs (propagation + metrics + summaries) ------------
    ref_dict_s, ref_summaries = _best_of(
        lambda: _end_to_end(graph, pairs, "reference", use_kernel=False)
    )
    cmp_dict_s, dict_summaries = _best_of(
        lambda: _end_to_end(graph, pairs, "compiled", use_kernel=False)
    )

    def kernel_sweep():
        return _end_to_end(graph, pairs, "compiled", use_kernel=True)

    kernel_e2e_s, kernel_summaries = _best_of(kernel_sweep)
    benchmark.pedantic(kernel_sweep, rounds=1, iterations=1)

    # correctness first: every leg must agree bit-for-bit
    assert ref_summaries == dict_summaries == kernel_summaries, (
        "kernel sweep summaries diverged from the dict path"
    )

    # -- metric layer alone, on the same pre-propagated states ----------
    states = _propagated_states(graph, pairs, "compiled")

    def dict_metrics():
        _clear_metric_caches(states)
        return _metric_layer(states, use_kernel=False)

    def kernel_metrics():
        _clear_metric_caches(states)
        return _metric_layer(states, use_kernel=True)

    dict_metric_s, metric_dict_summaries = _best_of(dict_metrics)
    kernel_metric_s, metric_kernel_summaries = _best_of(kernel_metrics)
    assert metric_dict_summaries == metric_kernel_summaries == dict_summaries

    # the array path must never have materialized the routes dict
    _clear_metric_caches(states)
    _metric_layer(states, use_kernel=True)
    materialized = sum(
        1 for state in states if state._materialized is not None
    )
    assert materialized == 0
    for state in states:
        assert state._materialized is None

    dict_peak_kb = _metric_peak_kb(states, use_kernel=False)
    kernel_peak_kb = _metric_peak_kb(states, use_kernel=True)

    metric_speedup = dict_metric_s / kernel_metric_s
    end_to_end_speedup = cmp_dict_s / kernel_e2e_s
    record = {
        "sweep": "fig6_table2 hierarchy-free reliance (per-cloud)",
        "clouds": len(pairs),
        "ases": len(graph),
        "rounds": ROUNDS,
        "end_to_end_s": {
            "reference_dict": ref_dict_s,
            "compiled_dict": cmp_dict_s,
            "compiled_kernel": kernel_e2e_s,
        },
        "metric_layer_s": {
            "compiled_dict": dict_metric_s,
            "compiled_kernel": kernel_metric_s,
        },
        "metric_layer_peak_kb": {
            "compiled_dict": dict_peak_kb,
            "compiled_kernel": kernel_peak_kb,
        },
        "metric_layer_speedup": metric_speedup,
        "end_to_end_speedup_vs_compiled_dict": end_to_end_speedup,
        "end_to_end_speedup_vs_reference_dict": ref_dict_s / kernel_e2e_s,
        "materialized_states": materialized,
        "summaries_identical": True,
    }
    write_bench_json(BENCH_JSON, record, engine="compiled", workers=None)

    assert metric_speedup >= 3.0, (
        f"array kernels ({kernel_metric_s * 1e3:.2f} ms) are only "
        f"{metric_speedup:.2f}x faster than the dict metric path "
        f"({dict_metric_s * 1e3:.2f} ms) on the Fig. 6 sweep states"
    )
    # end-to-end, the sweep must still improve materially even though
    # propagation (not touched by this change) dominates the remainder
    assert end_to_end_speedup >= 1.3, (
        f"end-to-end sweep speedup collapsed to {end_to_end_speedup:.2f}x"
    )
    # the kernels should also allocate less than the dict pipeline peaks
    assert kernel_peak_kb < dict_peak_kb
