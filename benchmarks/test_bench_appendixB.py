"""E14 — Appendix B: Tier-1 reliance on Tier-2 ISPs."""

from repro.experiments import appendixB_tier1

from benchmarks.conftest import run_once


def test_bench_appendixB_tier1_reliance(benchmark, ctx2020):
    result = run_once(benchmark, appendixB_tier1.run, ctx2020)

    names = {case.name for case in result.cases}
    assert "Sprint" in names
    assert "Level 3" in names

    sprint = result.case("Sprint")
    level3 = result.case("Level 3")

    # paper shape: Sprint collapses without the Tier-2s; Level 3 does not
    assert sprint.hierarchy_free < 0.3 * sprint.tier1_free
    assert level3.hierarchy_free > 0.5 * level3.tier1_free

    # bypassing only Sprint's six highest-reliance Tier-2s explains most
    # of its drop
    assert sprint.drop_explained_by_top6 > 0.6
    assert len(sprint.top_tier2_reliance) <= 6
    assert all(asn in ctx2020.tiers.tier2 for asn, _ in sprint.top_tier2_reliance)

    print()
    print(result.render())
