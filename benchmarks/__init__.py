"""Benchmark package: one benchmark per table/figure of the paper."""
