"""Extension bench — influence metrics side by side (§6.6 / §10).

Regenerates the metric-comparison table (hierarchy-free reachability vs
customer cone vs transit/node degree vs AS hegemony) and checks the
decorrelation story: clouds dominate on HFR while being invisible to the
transit-centric metrics.
"""

from repro.experiments import metrics_comparison

from benchmarks.conftest import run_once


def test_bench_metrics_comparison(benchmark, ctx2020):
    result = run_once(
        benchmark, metrics_comparison.run, ctx2020, hegemony_sample=20
    )

    google = result.row("Google")
    assert google.customer_cone == 0
    assert google.transit_degree <= len(ctx2020.graph.providers(google.asn))
    assert google.hierarchy_free > 0

    # the paper's Sprint example: a big customer cone with a collapsed
    # hierarchy-free rank
    sprint_like = [
        row
        for row in result.rows
        if row.cohort == "tier1"
        and row.customer_cone > google.customer_cone
        and row.hierarchy_free < google.hierarchy_free
    ]
    assert sprint_like, "no Tier-1 shows the cone/HFR inversion"

    # hegemony is bounded and transit-heavy networks score highest
    top_hegemony = max(result.rows, key=lambda r: r.hegemony)
    assert top_hegemony.cohort in ("tier1", "tier2")
    for row in result.rows:
        assert 0.0 <= row.hegemony <= 1.0

    print()
    print(result.render())
