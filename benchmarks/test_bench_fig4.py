"""E4 — regenerate Fig. 4 (unreachable ASes by type)."""

from repro.topology.astype import ASType
from repro.experiments import fig4_unreachable

from benchmarks.conftest import run_once


def test_bench_fig4_unreachable(benchmark, ctx2020):
    result = run_once(benchmark, fig4_unreachable.run, ctx2020)

    rows = {row.name: row for row in result.rows}
    assert {"Google", "Microsoft", "IBM", "Amazon"} <= set(rows)

    # paper shape: Amazon leaves the most ASes unreachable among clouds,
    # and the eyeball-chasing clouds leave proportionally fewer access
    # networks unreached than Amazon does
    cloud_unreachable = {
        name: rows[name].unreachable_total
        for name in ("Google", "Microsoft", "IBM", "Amazon")
    }
    assert cloud_unreachable["Amazon"] == max(cloud_unreachable.values())
    assert (
        rows["Google"].fraction(ASType.ACCESS)
        <= rows["Amazon"].fraction(ASType.ACCESS) + 0.05
    )

    # every breakdown accounts for the whole unreachable set
    for row in result.rows:
        assert sum(row.breakdown.values()) == row.unreachable_total

    print()
    print(result.render())
