"""E3 — regenerate Fig. 3 (hierarchy-free reachability vs customer cone)."""

from repro.experiments import fig3_cone_vs_hfr

from benchmarks.conftest import run_once


def test_bench_fig3_cone_vs_hfr(benchmark, ctx2020):
    result = run_once(benchmark, fig3_cone_vs_hfr.run, ctx2020)

    assert len(result.points) == len(ctx2020.graph)

    # paper shape: far more networks clear the threshold on hierarchy-free
    # reachability than on customer cone (8,374 vs 51 in the paper)
    threshold = result.threshold
    assert result.count_hfr_at_least(threshold) >= 1.5 * result.count_cone_at_least(
        threshold
    )

    # the metrics decorrelate below the big transits
    assert result.rank_correlation() < 0.8

    # clouds: tiny cones, huge hierarchy-free reachability
    cloud_points = [p for p in result.points if p.category == "cloud"]
    assert cloud_points
    for point in cloud_points:
        assert point.customer_cone < point.hierarchy_free

    print()
    print(result.render())
