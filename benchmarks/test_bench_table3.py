"""E11 — regenerate Table 3 (PoPs and rDNS confirmation)."""

from repro.experiments import table3_rdns

from benchmarks.conftest import run_once


def test_bench_table3_rdns(benchmark, ctx2020):
    result = run_once(benchmark, table3_rdns.run, ctx2020)

    providers = {row.provider for row in result.rows}
    assert {"Google", "Microsoft", "IBM", "Amazon"} <= providers

    # paper shape: Amazon publishes no router hostnames; overall roughly
    # three quarters of consolidated PoPs are confirmed by rDNS
    amazon = result.row("Amazon")
    assert amazon.hostnames == 0
    assert amazon.rdns_percent == 0.0
    assert 50.0 < result.overall_rdns_percent < 95.0

    # rows are sorted by confirmation rate and every provider has PoPs
    rates = [row.rdns_percent for row in result.rows]
    assert rates == sorted(rates, reverse=True)
    for row in result.rows:
        assert row.graph_pops > 0

    print()
    print(result.render())
