"""Ablation — the bitset cone engine vs the exact valley-free BFS, and
the serial vs parallel propagation sweep.

DESIGN.md calls out the all-AS sweep fast path as a design choice; this
benchmark measures both implementations on the same sweep and checks they
agree exactly.  The propagation-sweep pair additionally records a
machine-readable comparison in ``benchmarks/bench_parallel_engine.json``
(serial and parallel wall-clock, speedup, worker/CPU counts) so perf
regressions in the parallel path are visible in review.  The
parallel-beats-serial assertion only applies on multi-CPU hosts — on a
single CPU a process pool can only add overhead.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.bgpsim import propagate_many
from repro.core import ConeEngine, hierarchy_free_reachability
from repro.core.metrics import hierarchy_free_sweep

BENCH_JSON = Path(__file__).resolve().parent / "bench_parallel_engine.json"
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))


@pytest.fixture(scope="module")
def sample_origins(ctx2020):
    nodes = sorted(ctx2020.graph.nodes())
    return nodes[:: max(1, len(nodes) // 150)]


def test_bench_sweep_bitset_engine(benchmark, ctx2020, sample_origins):
    graph, tiers = ctx2020.graph, ctx2020.tiers
    engine = ConeEngine(graph, excluded=tiers.hierarchy)

    def sweep():
        return hierarchy_free_sweep(
            graph, tiers, origins=sample_origins, engine=engine
        )

    result = benchmark(sweep)
    assert len(result) == len(sample_origins)


def test_bench_sweep_exact_bfs(benchmark, ctx2020, sample_origins):
    graph, tiers = ctx2020.graph, ctx2020.tiers

    def sweep():
        return {
            origin: hierarchy_free_reachability(graph, origin, tiers)
            for origin in sample_origins
        }

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # exactness: the fast path returns identical values
    engine = ConeEngine(graph, excluded=tiers.hierarchy)
    fast = hierarchy_free_sweep(
        graph, tiers, origins=sample_origins, engine=engine
    )
    assert fast == result


@pytest.fixture(scope="module")
def propagation_origins(ctx2020):
    nodes = sorted(ctx2020.graph.nodes())
    return nodes[:: max(1, len(nodes) // 80)]


_sweep_timings: dict[str, float] = {}


def test_bench_propagate_sweep_serial(benchmark, ctx2020, propagation_origins):
    graph = ctx2020.graph

    def sweep():
        return list(propagate_many(graph, propagation_origins, workers=1))

    started = time.perf_counter()
    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _sweep_timings["serial_s"] = time.perf_counter() - started
    assert len(result) == len(propagation_origins)


def test_bench_propagate_sweep_parallel(
    benchmark, ctx2020, propagation_origins
):
    graph = ctx2020.graph

    def sweep():
        return list(
            propagate_many(graph, propagation_origins, workers=BENCH_WORKERS)
        )

    started = time.perf_counter()
    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    parallel_s = time.perf_counter() - started

    # exactness: the parallel sweep returns identical states
    serial = propagate_many(graph, propagation_origins, workers=1)
    for par_state, ser_state in zip(result, serial):
        assert par_state.routes.keys() == ser_state.routes.keys()
        for asn, ser_route in ser_state.routes.items():
            par_route = par_state.routes[asn]
            assert (
                par_route.route_class == ser_route.route_class
                and par_route.length == ser_route.length
                and par_route.parents == ser_route.parents
            )

    serial_s = _sweep_timings.get("serial_s")
    cpus = os.cpu_count() or 1
    record = {
        "profile": os.environ.get("REPRO_PROFILE", "small"),
        "origins": len(propagation_origins),
        "ases": len(graph),
        "workers": BENCH_WORKERS,
        "cpus": cpus,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": (serial_s / parallel_s) if serial_s else None,
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
    if serial_s is not None and cpus >= 2 and BENCH_WORKERS >= 2:
        assert parallel_s < serial_s, (
            f"parallel sweep ({parallel_s:.3f}s, workers={BENCH_WORKERS}) "
            f"did not beat serial ({serial_s:.3f}s) on a {cpus}-CPU host"
        )


def test_bench_measurement_pipeline(benchmark):
    """E12's cost driver: the full scenario + campaign + inference build."""
    from repro.experiments.context import build_context

    def build():
        return build_context("tiny", seed=99)

    ctx = benchmark.pedantic(build, rounds=1, iterations=1)
    assert ctx.inferred
    assert ctx.augmented_graph.edge_count() > 0
