"""Ablation — the bitset cone engine vs the exact valley-free BFS.

DESIGN.md calls out the all-AS sweep fast path as a design choice; this
benchmark measures both implementations on the same sweep and checks they
agree exactly.
"""

import pytest

from repro.core import ConeEngine, hierarchy_free_reachability
from repro.core.metrics import hierarchy_free_sweep


@pytest.fixture(scope="module")
def sample_origins(ctx2020):
    nodes = sorted(ctx2020.graph.nodes())
    return nodes[:: max(1, len(nodes) // 150)]


def test_bench_sweep_bitset_engine(benchmark, ctx2020, sample_origins):
    graph, tiers = ctx2020.graph, ctx2020.tiers
    engine = ConeEngine(graph, excluded=tiers.hierarchy)

    def sweep():
        return hierarchy_free_sweep(
            graph, tiers, origins=sample_origins, engine=engine
        )

    result = benchmark(sweep)
    assert len(result) == len(sample_origins)


def test_bench_sweep_exact_bfs(benchmark, ctx2020, sample_origins):
    graph, tiers = ctx2020.graph, ctx2020.tiers

    def sweep():
        return {
            origin: hierarchy_free_reachability(graph, origin, tiers)
            for origin in sample_origins
        }

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # exactness: the fast path returns identical values
    engine = ConeEngine(graph, excluded=tiers.hierarchy)
    fast = hierarchy_free_sweep(
        graph, tiers, origins=sample_origins, engine=engine
    )
    assert fast == result


def test_bench_measurement_pipeline(benchmark):
    """E12's cost driver: the full scenario + campaign + inference build."""
    from repro.experiments.context import build_context

    def build():
        return build_context("tiny", seed=99)

    ctx = benchmark.pedantic(build, rounds=1, iterations=1)
    assert ctx.inferred
    assert ctx.augmented_graph.edge_count() > 0
