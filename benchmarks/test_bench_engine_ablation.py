"""Ablation — the bitset cone engine vs the exact valley-free BFS, the
serial vs parallel propagation sweep, and the three-way propagation-engine
ablation (reference / compiled-serial / compiled-parallel).

DESIGN.md calls out the all-AS sweep fast path as a design choice; this
benchmark measures both implementations on the same sweep and checks they
agree exactly.  The propagation-sweep pair additionally records a
machine-readable comparison in ``benchmarks/bench_parallel_engine.json``
(serial and parallel wall-clock, speedup, worker/CPU counts) so perf
regressions in the parallel path are visible in review.  The
parallel-beats-serial assertion only applies on multi-CPU hosts — on a
single CPU a process pool can only add overhead.

The engine ablation times the same all-origin sweep under the reference
dict-of-objects engine, the compiled CSR kernel, and the compiled kernel
fanned out over ``REPRO_BENCH_WORKERS`` processes; it records wall time,
tracemalloc peak for the retained states, and the pickled payload sizes
(dict-of-sets ``ASGraph`` vs CSR ``CompiledGraph``) in
``benchmarks/bench_compiled_engine.json``.  The compiled-beats-reference
assertion holds on any host; the parallel one is gated like PR1's.
"""

import os
import pickle
import time
import tracemalloc
from pathlib import Path

import pytest

from benchmarks.conftest import write_bench_json
from repro.bgpsim import propagate_many
from repro.core import ConeEngine, hierarchy_free_reachability
from repro.core.metrics import hierarchy_free_sweep

BENCH_JSON = Path(__file__).resolve().parent / "bench_parallel_engine.json"
COMPILED_JSON = Path(__file__).resolve().parent / "bench_compiled_engine.json"
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))


@pytest.fixture(scope="module")
def sample_origins(ctx2020):
    nodes = sorted(ctx2020.graph.nodes())
    return nodes[:: max(1, len(nodes) // 150)]


def test_bench_sweep_bitset_engine(benchmark, ctx2020, sample_origins):
    graph, tiers = ctx2020.graph, ctx2020.tiers
    engine = ConeEngine(graph, excluded=tiers.hierarchy)

    def sweep():
        return hierarchy_free_sweep(
            graph, tiers, origins=sample_origins, engine=engine
        )

    result = benchmark(sweep)
    assert len(result) == len(sample_origins)


def test_bench_sweep_exact_bfs(benchmark, ctx2020, sample_origins):
    graph, tiers = ctx2020.graph, ctx2020.tiers

    def sweep():
        return {
            origin: hierarchy_free_reachability(graph, origin, tiers)
            for origin in sample_origins
        }

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # exactness: the fast path returns identical values
    engine = ConeEngine(graph, excluded=tiers.hierarchy)
    fast = hierarchy_free_sweep(
        graph, tiers, origins=sample_origins, engine=engine
    )
    assert fast == result


@pytest.fixture(scope="module")
def propagation_origins(ctx2020):
    nodes = sorted(ctx2020.graph.nodes())
    return nodes[:: max(1, len(nodes) // 80)]


_sweep_timings: dict[str, float] = {}


def test_bench_propagate_sweep_serial(benchmark, ctx2020, propagation_origins):
    graph = ctx2020.graph

    def sweep():
        return list(propagate_many(graph, propagation_origins, workers=1))

    started = time.perf_counter()
    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _sweep_timings["serial_s"] = time.perf_counter() - started
    assert len(result) == len(propagation_origins)


def test_bench_propagate_sweep_parallel(
    benchmark, ctx2020, propagation_origins
):
    graph = ctx2020.graph

    def sweep():
        return list(
            propagate_many(graph, propagation_origins, workers=BENCH_WORKERS)
        )

    started = time.perf_counter()
    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    parallel_s = time.perf_counter() - started

    # exactness: the parallel sweep returns identical states
    serial = propagate_many(graph, propagation_origins, workers=1)
    for par_state, ser_state in zip(result, serial):
        assert par_state.routes.keys() == ser_state.routes.keys()
        for asn, ser_route in ser_state.routes.items():
            par_route = par_state.routes[asn]
            assert (
                par_route.route_class == ser_route.route_class
                and par_route.length == ser_route.length
                and par_route.parents == ser_route.parents
            )

    serial_s = _sweep_timings.get("serial_s")
    cpus = os.cpu_count() or 1
    record = {
        "origins": len(propagation_origins),
        "ases": len(graph),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": (serial_s / parallel_s) if serial_s else None,
    }
    write_bench_json(BENCH_JSON, record, workers=BENCH_WORKERS)
    if serial_s is not None and cpus >= 2 and BENCH_WORKERS >= 2:
        assert parallel_s < serial_s, (
            f"parallel sweep ({parallel_s:.3f}s, workers={BENCH_WORKERS}) "
            f"did not beat serial ({serial_s:.3f}s) on a {cpus}-CPU host"
        )


# ---------------------------------------------------------------------------
# three-way engine ablation: reference / compiled-serial / compiled-parallel
# ---------------------------------------------------------------------------

_engine_ablation: dict[str, dict] = {}


def _timed_sweep(graph, origins, *, engine, workers=1):
    started = time.perf_counter()
    states = list(
        propagate_many(graph, origins, workers=workers, engine=engine)
    )
    wall_s = time.perf_counter() - started
    # peak memory of computing + retaining the whole sweep's states
    # (measured outside the timed run — tracing slows the kernel itself)
    tracemalloc.start()
    retained = list(
        propagate_many(graph, origins, workers=workers, engine=engine)
    )
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del retained
    return states, {"wall_s": wall_s, "tracemalloc_peak_bytes": peak}


def test_bench_engine_ablation_reference(
    benchmark, ctx2020, propagation_origins
):
    graph = ctx2020.graph

    def sweep():
        states, record = _timed_sweep(
            graph, propagation_origins, engine="reference"
        )
        _engine_ablation["reference"] = record
        return states

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(result) == len(propagation_origins)


def test_bench_engine_ablation_compiled_serial(
    benchmark, ctx2020, propagation_origins
):
    graph = ctx2020.graph
    graph.compile()  # one-time CSR build stays out of the timed sweep

    def sweep():
        states, record = _timed_sweep(
            graph, propagation_origins, engine="compiled"
        )
        _engine_ablation["compiled_serial"] = record
        return states

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # exactness: the compiled kernel returns identical states
    reference = propagate_many(
        graph, propagation_origins, workers=1, engine="reference"
    )
    for comp_state, ref_state in zip(result, reference):
        assert comp_state.routes.keys() == ref_state.routes.keys()
        for asn, ref_route in ref_state.routes.items():
            comp_route = comp_state.routes[asn]
            assert (
                comp_route.route_class == ref_route.route_class
                and comp_route.length == ref_route.length
                and comp_route.parents == ref_route.parents
                and comp_route.origins == ref_route.origins
            )


def test_bench_engine_ablation_compiled_parallel(
    benchmark, ctx2020, propagation_origins
):
    graph = ctx2020.graph

    def sweep():
        states, record = _timed_sweep(
            graph,
            propagation_origins,
            engine="compiled",
            workers=BENCH_WORKERS,
        )
        record["workers"] = BENCH_WORKERS
        _engine_ablation["compiled_parallel"] = record
        return states

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(result) == len(propagation_origins)

    graph_bytes = len(pickle.dumps(graph))
    compiled_bytes = len(pickle.dumps(graph.compile()))
    cpus = os.cpu_count() or 1
    reference_s = _engine_ablation["reference"]["wall_s"]
    compiled_s = _engine_ablation["compiled_serial"]["wall_s"]
    parallel_s = _engine_ablation["compiled_parallel"]["wall_s"]
    record = {
        "origins": len(propagation_origins),
        "ases": len(graph),
        "engines": _engine_ablation,
        "speedup_compiled_vs_reference": reference_s / compiled_s,
        "speedup_parallel_vs_reference": reference_s / parallel_s,
        "pickled_asgraph_bytes": graph_bytes,
        "pickled_compiled_graph_bytes": compiled_bytes,
        "payload_reduction_factor": graph_bytes / compiled_bytes,
    }
    write_bench_json(COMPILED_JSON, record, workers=BENCH_WORKERS)

    assert compiled_bytes < graph_bytes, (
        f"CompiledGraph pickled to {compiled_bytes} bytes, not smaller "
        f"than the {graph_bytes}-byte ASGraph"
    )
    assert compiled_s < reference_s, (
        f"compiled sweep ({compiled_s:.3f}s) did not beat the reference "
        f"engine ({reference_s:.3f}s)"
    )
    if cpus >= 2 and BENCH_WORKERS >= 2:
        assert parallel_s < compiled_s, (
            f"parallel compiled sweep ({parallel_s:.3f}s, "
            f"workers={BENCH_WORKERS}) did not beat serial compiled "
            f"({compiled_s:.3f}s) on a {cpus}-CPU host"
        )


def test_bench_measurement_pipeline(benchmark):
    """E12's cost driver: the full scenario + campaign + inference build."""
    from repro.experiments.context import build_context

    def build():
        return build_context("tiny", seed=99)

    ctx = benchmark.pedantic(build, rounds=1, iterations=1)
    assert ctx.inferred
    assert ctx.augmented_graph.edge_count() > 0
