"""E13 — Appendix A: simulated paths contain observed traceroute paths."""

from repro.experiments import appendixA_paths

from benchmarks.conftest import run_once


def test_bench_appendixA_path_containment(benchmark, ctx2020):
    result = run_once(
        benchmark, appendixA_paths.run, ctx2020, max_traces_per_cloud=2000
    )

    rates = {row.name: row.match_rate for row in result.rows}
    assert {"Google", "Microsoft", "IBM", "Amazon"} <= set(rates)

    # paper shape: high containment overall (73-92%), with Amazon lowest
    # because early exit makes its paths location-dependent
    for name, rate in rates.items():
        assert rate > 0.6, (name, rate)
    assert rates["Amazon"] == min(rates.values())
    assert rates["Amazon"] < max(rates.values())

    print()
    print(result.render())
