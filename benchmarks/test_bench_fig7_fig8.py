"""E6 — regenerate Figs. 7/8 (route-leak resilience per configuration),
plus the ablations DESIGN.md calls out (leak semantics, peer-lock
semantics)."""

import statistics

from repro.bgpsim import LeakMode
from repro.core import PeerLockSemantics, fraction_at_most, simulate_leak
from repro.experiments import fig7_10_leaks

from benchmarks.conftest import run_once

LEAKS = 40


def test_bench_fig7_fig8_resilience(benchmark, ctx2020):
    result = run_once(
        benchmark, fig7_10_leaks.run, ctx2020, leaks_per_config=LEAKS
    )

    by_name = {o.name: o for o in result.origins}
    assert {"Google", "Microsoft", "IBM", "Amazon"} <= set(by_name)

    for name in ("Google", "Microsoft", "IBM", "Amazon"):
        origin = by_name[name]
        # peer locking helps monotonically (erratum semantics)
        assert origin.mean("announce_all_global_lock") <= origin.mean(
            "announce_all_t1t2_lock"
        ) + 1e-9
        assert origin.mean("announce_all_t1t2_lock") <= origin.mean(
            "announce_all_t1_lock"
        ) + 1e-9
        assert origin.mean("announce_all_t1_lock") <= origin.mean(
            "announce_all"
        ) + 1e-9
        # announcing only to the hierarchy forfeits the peering footprint
        assert origin.mean("announce_hierarchy_only") >= origin.mean(
            "announce_all"
        )

    # clouds beat the random-origin average resilience
    for name in ("Google", "Microsoft", "IBM", "Amazon"):
        assert by_name[name].mean("announce_all") < result.average_mean

    # global locking is near immunity: most leaks detour almost nobody
    google = by_name["Google"]
    assert fraction_at_most(
        google.curves["announce_all_global_lock"], 0.05
    ) > 0.7

    print()
    print(result.render())


def test_bench_ablation_leak_semantics(benchmark, ctx2020):
    """Hijack-mode leaks (origin announcement) detour at least as many ASes
    as re-announced leaks (longer competing paths)."""
    graph = ctx2020.graph
    google = ctx2020.clouds["Google"]
    leakers = fig7_10_leaks.sample_leakers(ctx2020, 25, seed=3)

    def run_modes():
        pairs = []
        for leaker in leakers:
            if leaker == google:
                continue
            leak = simulate_leak(graph, google, leaker, mode=LeakMode.REANNOUNCE)
            hijack = simulate_leak(graph, google, leaker, mode=LeakMode.HIJACK)
            if leak is not None and hijack is not None:
                pairs.append((leak.fraction_detoured, hijack.fraction_detoured))
        return pairs

    pairs = benchmark.pedantic(run_modes, rounds=1, iterations=1)
    assert pairs
    assert statistics.mean(h for _, h in pairs) >= statistics.mean(
        l for l, _ in pairs
    )


def test_bench_ablation_peerlock_semantics(benchmark, ctx2020):
    """Erratum peer-lock filtering is at least as strong as the original
    paper's (buggy) first-hop-only filtering."""
    from repro.core import configuration_seed_and_locks

    graph, tiers = ctx2020.graph, ctx2020.tiers
    google = ctx2020.clouds["Google"]
    seed, locks = configuration_seed_and_locks(
        graph, google, tiers, "announce_all_t1t2_lock"
    )
    leakers = fig7_10_leaks.sample_leakers(ctx2020, 25, seed=5)

    def run_semantics():
        rows = []
        for leaker in leakers:
            if leaker == google:
                continue
            erratum = simulate_leak(
                graph, seed, leaker, peer_locked=locks,
                semantics=PeerLockSemantics.ERRATUM,
            )
            original = simulate_leak(
                graph, seed, leaker, peer_locked=locks,
                semantics=PeerLockSemantics.ORIGINAL,
            )
            if erratum is not None and original is not None:
                rows.append((len(erratum.detoured), len(original.detoured)))
        return rows

    rows = benchmark.pedantic(run_semantics, rounds=1, iterations=1)
    assert rows
    assert sum(e for e, _ in rows) <= sum(o for _, o in rows)
