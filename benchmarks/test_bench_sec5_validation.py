"""E12 — §4.1 peer counts and the §5 methodology-iteration trajectory."""

from repro.experiments import sec45_validation

from benchmarks.conftest import run_once


def test_bench_sec45_validation(benchmark, ctx2020):
    result = run_once(benchmark, sec45_validation.run, ctx2020)

    # §4.1 shape: BGP feeds miss the bulk of every cloud's neighbors, and
    # the traceroute-augmented view recovers most of them
    counts = {row.name: row for row in result.peer_counts}
    for name in ("Google", "Microsoft"):
        assert counts[name].missed_by_bgp > 0.6
    for row in result.peer_counts:
        assert row.augmented > row.bgp_visible

    # §5 shape: the initial methodology is very noisy (FDR near 50%) and
    # the final stage cuts both error rates dramatically
    assert result.mean_fdr("V0") > 0.25
    assert result.mean_fdr("V4") < result.mean_fdr("V0") / 3
    assert result.mean_fnr("V4") <= result.mean_fnr("V1")

    # skipping unknown hops (V0→V1) was the leading FDR cause
    assert result.mean_fdr("V1") < result.mean_fdr("V0") / 2

    print()
    print(result.render())
