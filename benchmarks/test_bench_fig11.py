"""E9 — regenerate Fig. 11 (PoP deployments vs population density)."""

from repro.experiments import fig11_map

from benchmarks.conftest import run_once


def test_bench_fig11_pop_map(benchmark, ctx2020):
    result = run_once(benchmark, fig11_map.run, ctx2020)

    # paper shape: Shanghai and Beijing are cloud-only; transit providers
    # have many more unique metros than the clouds
    assert {"sha", "bjs"} <= result.cloud_only
    assert len(result.transit_only) > len(result.cloud_only)

    # both cohorts deploy near people: a PoP within 500 km of most of the
    # world's (metro) population
    assert result.population_near_cloud > 0.5
    assert result.population_near_transit > 0.5

    # clouds concentrate in NA/EU/Asia
    from repro.geo import Continent

    histogram = result.continent_histogram(result.cloud_cities)
    core = (
        histogram.get(Continent.NORTH_AMERICA, 0)
        + histogram.get(Continent.EUROPE, 0)
        + histogram.get(Continent.ASIA, 0)
    )
    assert core / sum(histogram.values()) > 0.8

    print()
    print(result.render())
