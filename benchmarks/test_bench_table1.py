"""E2 — regenerate Table 1 (top-20 hierarchy-free, 2015 vs 2020)."""

from repro.experiments import table1_top20

from benchmarks.conftest import run_once


def test_bench_table1_top20(benchmark, ctx2020, ctx2015):
    result = run_once(benchmark, table1_top20.run, ctx2020, ctx2015)

    assert len(result.entries_2020) == 20
    assert len(result.entries_2015) == 20

    names_2020 = [e.name for e in result.entries_2020]
    names_2015 = [e.name for e in result.entries_2015]

    # paper shape: Google is top-3 in BOTH years; all four clouds make the
    # 2020 top-20; Amazon and Microsoft climb dramatically over the period
    assert "Google" in names_2015[:5]
    assert "Google" in names_2020[:5]
    for cloud in ("Google", "Microsoft", "IBM", "Amazon"):
        assert cloud in names_2020
    assert result.cloud_ranks_2020["Microsoft"] < result.cloud_ranks_2015["Microsoft"]
    assert result.cloud_ranks_2020["Amazon"] < result.cloud_ranks_2015["Amazon"]

    # the top of the table keeps a big share of the Internet reachable
    assert result.entries_2020[0].fraction > 0.6

    print()
    print(result.render())
