"""E5 — regenerate Fig. 6 + Table 2 (cloud reliance)."""

from repro.experiments import fig6_table2_reliance

from benchmarks.conftest import run_once


def test_bench_fig6_table2_reliance(benchmark, ctx2020):
    result = run_once(benchmark, fig6_table2_reliance.run, ctx2020)

    assert len(result.clouds) == 4
    for cloud in result.clouds:
        # paper shape: the overwhelming majority of networks have
        # reliance 1 — far closer to the flat mesh than the hierarchy
        assert cloud.fraction_at_one() > 0.7
        # a handful of networks carry real reliance
        assert cloud.max_reliance > 2.0
        assert len(cloud.top3) == 3
        # histogram covers every relied-on network
        assert sum(cloud.histogram.values()) == cloud.networks_relied_on

    print()
    print(result.render())
