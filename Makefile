# Convenience targets for the repro toolkit.

PROFILE ?= small

.PHONY: install test bench experiments csv examples all

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	python -m repro.experiments.runner $(PROFILE)

csv:
	python -m repro.experiments.runner $(PROFILE) --csv results/

examples:
	for ex in examples/*.py; do echo "== $$ex"; python $$ex; done

all: test bench
