# Convenience targets for the repro toolkit.

PROFILE ?= small

# Let the targets work from a fresh checkout without `make install`.
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install test test-fast bench bench-engine bench-leaks bench-events bench-metrics-kernel bench-multiorigin bench-vector bench-scale bench-serve experiments csv examples all

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

# Everything except the slow full-pipeline golden regressions (~20s saved);
# run `make test` before landing engine or scenario changes.
test-fast:
	pytest tests/ -m "not slow"

bench:
	pytest benchmarks/ --benchmark-only

# Propagation-engine ablation (reference / compiled-serial /
# compiled-parallel); writes benchmarks/bench_compiled_engine.json.
bench-engine:
	pytest benchmarks/test_bench_engine_ablation.py --benchmark-only

# Incremental vs full leak sweep (Fig. 7/8 shape); asserts identical
# curves and the >=3x speedup, writes benchmarks/bench_leak_incremental.json.
bench-leaks:
	pytest benchmarks/test_bench_leak_incremental.py --benchmark-only

# Event-delta timeline replay vs full recompute (failures, depeering,
# leak, hijack); asserts identical metric rows and the >=2x speedup,
# writes benchmarks/bench_events.json.
bench-events:
	pytest benchmarks/test_bench_events.py --benchmark-only

# Array-native metric kernels vs the dict metric path on the Fig. 6/
# Table 2 reliance sweep; asserts identical summaries, zero routes
# materializations, and the >=3x metric-layer speedup; writes
# benchmarks/bench_metric_kernels.json.
bench-metrics-kernel:
	pytest benchmarks/test_bench_metric_kernels.py --benchmark-only

# Bit-parallel multi-origin propagation vs per-origin compiled sweeps
# (collect_ribs + global_hegemony); asserts bitwise-identical outputs and
# the >=3x propagation-layer speedup; writes
# benchmarks/bench_multiorigin.json.
bench-multiorigin:
	pytest benchmarks/test_bench_multiorigin.py --benchmark-only

# Vectorized numpy kernels vs the pure-Python compiled path (propagation
# + path counts + reliance + hegemony + histogram on 32 origins); asserts
# bitwise-identical outputs and the >=3x speedup; writes
# benchmarks/bench_vector.json.  Requires numpy (the [perf] extra).
bench-vector:
	pytest benchmarks/test_bench_vector.py --benchmark-only

# Propagation + Fig. 6 reliance sweep wall time across scenario scales
# (small ~700 / mid ~2k / large ~10k ASes), engine/vector/shm/batch
# stamped; per-stage wall time + tracemalloc/RSS peaks, and the large
# profile's streamed-vs-eager sweeps (bit-identical, >=5x lower peak).
# REPRO_FULL_PROFILE=1 appends a ~70k-AS generation+validation row.
# Writes benchmarks/bench_scale.json.
bench-scale:
	pytest benchmarks/test_bench_scale.py --benchmark-only

# Query-serving tiers: cold propagation vs warm LRU vs precomputed mmap
# shards, plus an HTTP load-generator leg against the real `repro serve`
# server; asserts bit-identical answers across tiers, the >=10x
# precomputed-vs-cold speedup, and the >=10x metric-shard win on
# /reliance and /hegemony vs the live kernels; also races 1 vs 2
# SO_REUSEPORT serve workers (parallel win asserted on multi-CPU hosts)
# and stamps per-endpoint latency histograms; writes
# benchmarks/bench_serve.json.
bench-serve:
	pytest benchmarks/test_bench_serve.py --benchmark-only

experiments:
	python -m repro.experiments.runner $(PROFILE)

csv:
	python -m repro.experiments.runner $(PROFILE) --csv results/

examples:
	for ex in examples/*.py; do echo "== $$ex"; python $$ex; done

all: test bench
